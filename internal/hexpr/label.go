package hexpr

import "fmt"

// Dir is the direction of a communication action on a channel.
type Dir int

const (
	// Recv is an input action a.
	Recv Dir = iota
	// Send is an output action ā.
	Send
)

func (d Dir) String() string {
	if d == Send {
		return "!"
	}
	return "?"
}

// Comm is a communication action over a channel: an input a (Recv) or an
// output ā (Send). The internal action τ is represented by Tau, not by a
// Comm.
type Comm struct {
	Channel string
	Dir     Dir
}

// In builds the input action a.
func In(channel string) Comm { return Comm{Channel: channel, Dir: Recv} }

// Out builds the output action ā.
func Out(channel string) Comm { return Comm{Channel: channel, Dir: Send} }

// Co returns the co-action: co(a) = ā and co(ā) = a.
func (c Comm) Co() Comm {
	c.Dir = 1 - c.Dir
	return c
}

// IsSend reports whether c is an output action.
func (c Comm) IsSend() bool { return c.Dir == Send }

func (c Comm) String() string { return c.Channel + c.Dir.String() }

// LabelKind discriminates the transition labels λ ∈ Comm ∪ Ev ∪ Frm of the
// operational semantics.
type LabelKind int

const (
	// LTau is the silent action τ produced by a synchronisation.
	LTau LabelKind = iota
	// LEvent is a security access event α.
	LEvent
	// LComm is a communication action a or ā.
	LComm
	// LOpen is the session-opening action open_{r,φ}.
	LOpen
	// LClose is the session-closing action close_{r,φ}.
	LClose
	// LFrameOpen is the framing action ⌊φ logging policy activation.
	LFrameOpen
	// LFrameClose is the framing action ⌋φ logging policy deactivation.
	LFrameClose
)

// Label is a transition label of the operational semantics: a
// communication, an event, a session open/close, a framing action, or τ.
type Label struct {
	Kind   LabelKind
	Event  Event     // valid when Kind == LEvent
	Comm   Comm      // valid when Kind == LComm
	Req    RequestID // valid when Kind ∈ {LOpen, LClose}
	Policy PolicyID  // valid when Kind ∈ {LOpen, LClose, LFrameOpen, LFrameClose}
}

// Tau is the silent label τ.
var Tau = Label{Kind: LTau}

// EventLabel wraps an event as a transition label.
func EventLabel(e Event) Label { return Label{Kind: LEvent, Event: e} }

// CommLabel wraps a communication action as a transition label.
func CommLabel(c Comm) Label { return Label{Kind: LComm, Comm: c} }

// OpenLabel is the label open_{r,φ}.
func OpenLabel(r RequestID, p PolicyID) Label { return Label{Kind: LOpen, Req: r, Policy: p} }

// CloseLabel is the label close_{r,φ}.
func CloseLabel(r RequestID, p PolicyID) Label { return Label{Kind: LClose, Req: r, Policy: p} }

// FrameOpenLabel is the label ⌊φ.
func FrameOpenLabel(p PolicyID) Label { return Label{Kind: LFrameOpen, Policy: p} }

// FrameCloseLabel is the label ⌋φ.
func FrameCloseLabel(p PolicyID) Label { return Label{Kind: LFrameClose, Policy: p} }

// IsComm reports whether the label is a visible communication action.
func (l Label) IsComm() bool { return l.Kind == LComm }

// IsFraming reports whether the label is ⌊φ or ⌋φ.
func (l Label) IsFraming() bool { return l.Kind == LFrameOpen || l.Kind == LFrameClose }

func (l Label) String() string {
	switch l.Kind {
	case LTau:
		return "tau"
	case LEvent:
		return l.Event.String()
	case LComm:
		return l.Comm.String()
	case LOpen:
		return fmt.Sprintf("open[%s,%s]", l.Req, policyName(l.Policy))
	case LClose:
		return fmt.Sprintf("close[%s,%s]", l.Req, policyName(l.Policy))
	case LFrameOpen:
		return "[_" + string(l.Policy)
	case LFrameClose:
		return "_]" + string(l.Policy)
	}
	return "?"
}

func policyName(p PolicyID) string {
	if p == NoPolicy {
		return "0"
	}
	return string(p)
}

// Key returns a canonical string usable as a map key; it coincides with
// String, which is injective on labels.
func (l Label) Key() string { return l.String() }
