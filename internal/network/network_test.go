package network_test

import (
	"math/rand"
	"testing"

	"susc/internal/hexpr"
	"susc/internal/history"
	"susc/internal/network"
	"susc/internal/paperex"
)

// plan1 is π₁ of §2: request 1 to the broker, request 3 to hotel S3.
func plan1() network.Plan {
	return network.Plan{"r1": paperex.LocBr, "r3": paperex.LocS3}
}

func c1Config(plan network.Plan) *network.Config {
	return network.NewConfig(paperex.Repository(), paperex.Policies(),
		network.Client{Loc: paperex.LocC1, Expr: paperex.C1(), Plan: plan})
}

func TestPlanKey(t *testing.T) {
	p := plan1()
	if p.Key() != "{r1>br,r3>s3}" {
		t.Errorf("Key = %q", p.Key())
	}
	q := p.Clone()
	q["r3"] = paperex.LocS2
	if p["r3"] != paperex.LocS3 {
		t.Error("Clone must not alias")
	}
}

func TestRunValidPlanCompletes(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		cfg := c1Config(plan1())
		res := cfg.Run(network.RunOptions{Rand: rand.New(rand.NewSource(seed)), Monitored: true})
		if res.Status != network.Completed {
			t.Fatalf("seed %d: status = %s (%s)", seed, res.Status, res)
		}
		h := cfg.Comps[0].Hist
		if !h.Balanced() {
			t.Errorf("seed %d: final history not balanced: %s", seed, h)
		}
		if !history.Valid(h, paperex.Policies()) {
			t.Errorf("seed %d: final history invalid: %s", seed, h)
		}
	}
}

func TestRunUnmonitoredEqualsMonitoredOnValidPlan(t *testing.T) {
	// With a valid plan, the monitor never prunes anything: the same seeds
	// give the same traces.
	for seed := int64(0); seed < 10; seed++ {
		cfgM := c1Config(plan1())
		cfgF := c1Config(plan1())
		rm := cfgM.Run(network.RunOptions{Rand: rand.New(rand.NewSource(seed)), Monitored: true})
		rf := cfgF.Run(network.RunOptions{Rand: rand.New(rand.NewSource(seed)), Monitored: false})
		if rm.String() != rf.String() {
			t.Fatalf("seed %d: monitored and free traces differ:\n%s\n%s", seed, rm, rf)
		}
	}
}

// delOnlyHotel is an S2 variant that always answers Del, forcing the
// deadlock deterministically.
func delOnlyHotel() hexpr.Expr {
	return hexpr.Cat(
		hexpr.Act(hexpr.E(paperex.EvSgn, hexpr.Sym("s2"))),
		hexpr.Act(hexpr.E(paperex.EvPrice, hexpr.Int(70))),
		hexpr.Act(hexpr.E(paperex.EvRating, hexpr.Int(100))),
		hexpr.RecvThen("IdC", hexpr.SendThen("Del", hexpr.Eps())),
	)
}

func TestRunNonCompliantServiceDeadlocks(t *testing.T) {
	repo := paperex.Repository()
	repo[paperex.LocS2] = delOnlyHotel()
	cfg := network.NewConfig(repo, paperex.Policies(),
		network.Client{Loc: paperex.LocC1, Expr: paperex.C1(),
			Plan: network.Plan{"r1": paperex.LocBr, "r3": paperex.LocS2}})
	res := cfg.Run(network.RunOptions{})
	if res.Status != network.Deadlock {
		t.Fatalf("status = %s (%s), want deadlock", res.Status, res)
	}
}

func TestRunSecurityAbortWhenMonitored(t *testing.T) {
	// π₃ of §2 for C2: request 3 bound to S3, which C2 blacklists.
	plan := network.Plan{"r2": paperex.LocBr, "r3": paperex.LocS3}
	cfg := network.NewConfig(paperex.Repository(), paperex.Policies(),
		network.Client{Loc: paperex.LocC2, Expr: paperex.C2(), Plan: plan})
	res := cfg.Run(network.RunOptions{Monitored: true})
	if res.Status != network.SecurityAbort {
		t.Fatalf("status = %s (%s), want security-abort", res.Status, res)
	}
	// Unmonitored, the same plan produces an invalid history.
	cfg2 := network.NewConfig(paperex.Repository(), paperex.Policies(),
		network.Client{Loc: paperex.LocC2, Expr: paperex.C2(), Plan: plan})
	res2 := cfg2.Run(network.RunOptions{Monitored: false})
	if res2.Status != network.Completed {
		t.Fatalf("free run: status = %s, want completed", res2.Status)
	}
	if history.Valid(cfg2.Comps[0].Hist, paperex.Policies()) {
		t.Error("free run under π₃ must produce an invalid history")
	}
}

func TestRunUnboundRequestDeadlocks(t *testing.T) {
	cfg := c1Config(network.Plan{"r1": paperex.LocBr}) // r3 unbound
	res := cfg.Run(network.RunOptions{})
	if res.Status != network.Deadlock {
		t.Fatalf("status = %s, want deadlock on unbound r3", res.Status)
	}
	cfg2 := c1Config(network.Plan{"r1": "nowhere", "r3": paperex.LocS3})
	res2 := cfg2.Run(network.RunOptions{})
	if res2.Status != network.Deadlock {
		t.Fatalf("status = %s, want deadlock on dangling location", res2.Status)
	}
}

func TestRunOutOfFuel(t *testing.T) {
	// An infinite ping/pong session.
	server := hexpr.Mu("k", hexpr.RecvThen("ping", hexpr.SendThen("pong", hexpr.V("k"))))
	client := hexpr.Open("r1", hexpr.NoPolicy,
		hexpr.Mu("h", hexpr.SendThen("ping", hexpr.RecvThen("pong", hexpr.V("h")))))
	repo := network.Repository{"srv": server}
	cfg := network.NewConfig(repo, paperex.Policies(),
		network.Client{Loc: "cl", Expr: client, Plan: network.Plan{"r1": "srv"}})
	res := cfg.Run(network.RunOptions{MaxSteps: 100})
	if res.Status != network.OutOfFuel {
		t.Fatalf("status = %s, want out-of-fuel", res.Status)
	}
}

// TestFig3Trace replays the computation fragment of Figure 3: the two
// clients interleave; C1's session with the broker nests the broker's
// session with S3; S3 signs and publishes price and rating; the broker
// forwards the no-availability answer; session 1 closes; C2 proceeds.
func TestFig3Trace(t *testing.T) {
	phi1 := paperex.Phi1().ID()
	phi2 := paperex.Phi2().ID()
	cfg := network.NewConfig(paperex.Repository(), paperex.Policies(),
		network.Client{Loc: paperex.LocC1, Expr: paperex.C1(),
			Plan: network.Plan{"r1": paperex.LocBr, "r3": paperex.LocS3}},
		network.Client{Loc: paperex.LocC2, Expr: paperex.C2(),
			Plan: network.Plan{"r2": paperex.LocBr, "r3": paperex.LocS4}},
	)
	steps := []network.TraceEntry{
		{Comp: 0, Label: hexpr.OpenLabel("r1", phi1)},                                 // open session 1
		{Comp: 0, Label: hexpr.Tau},                                                   // Req
		{Comp: 0, Label: hexpr.OpenLabel("r3", hexpr.NoPolicy)},                       // nested open with S3
		{Comp: 1, Label: hexpr.OpenLabel("r2", phi2)},                                 // C2 starts concurrently
		{Comp: 0, Label: hexpr.EventLabel(hexpr.E(paperex.EvSgn, hexpr.Sym("s3")))},   // αsgn(3)
		{Comp: 0, Label: hexpr.EventLabel(hexpr.E(paperex.EvPrice, hexpr.Int(90)))},   // αp(90)
		{Comp: 0, Label: hexpr.EventLabel(hexpr.E(paperex.EvRating, hexpr.Int(100)))}, // αta(100)
		{Comp: 0, Label: hexpr.Tau},                                                   // IdC
		{Comp: 0, Label: hexpr.Tau},                                                   // UnA: no rooms
		{Comp: 0, Label: hexpr.CloseLabel("r3", hexpr.NoPolicy)},                      // close nested session
		{Comp: 0, Label: hexpr.Tau},                                                   // NoAv forwarded
		{Comp: 0, Label: hexpr.CloseLabel("r1", phi1)},                                // close session 1
		{Comp: 1, Label: hexpr.Tau},                                                   // C2's Req
	}
	if at := cfg.Replay(steps, true); at != -1 {
		t.Fatalf("Figure 3 trace not replayable at step %d (%s)", at, steps[at])
	}
	// After the fragment, C1 is done, its history is ⌊φ₁ sgn price rating ⌋φ₁.
	if !network.Done(cfg.Comps[0].Tree) {
		t.Errorf("C1 should be terminated, tree = %s", cfg.Comps[0].Tree.Key())
	}
	h := cfg.Comps[0].Hist
	if got := h.String(); got != "[_"+string(phi1)+" sgn(s3) price(90) rating(100) _]"+string(phi1) {
		t.Errorf("C1 history = %q", got)
	}
	if !h.Balanced() || !history.Valid(h, paperex.Policies()) {
		t.Error("C1 history must be balanced and valid")
	}
	// C2 is mid-session.
	if network.Done(cfg.Comps[1].Tree) {
		t.Error("C2 should still be running")
	}
}

func TestReplayRejectsWrongStep(t *testing.T) {
	cfg := c1Config(plan1())
	steps := []network.TraceEntry{
		{Comp: 0, Label: hexpr.Tau}, // nothing to synchronise yet
	}
	if at := cfg.Replay(steps, false); at != 0 {
		t.Errorf("replay should fail at 0, got %d", at)
	}
}

func TestClosingFrames(t *testing.T) {
	e := hexpr.Cat(
		hexpr.FrameClose{Policy: "a"},
		hexpr.Act(hexpr.E("ev")),
		hexpr.FrameClose{Policy: "b"},
	)
	items := network.ClosingFrames(e)
	if len(items) != 2 || items[0].Policy != "a" || items[1].Policy != "b" {
		t.Errorf("ClosingFrames = %v", items)
	}
	if items[0].Kind != history.ItemFrameClose {
		t.Error("items must be frame closes")
	}
	if got := network.ClosingFrames(hexpr.Eps()); len(got) != 0 {
		t.Errorf("Φ(ε) = %v", got)
	}
}

func TestCloseLogsDanglingServiceFrames(t *testing.T) {
	// A service that opens a framing and never closes it before the client
	// closes the session: Φ must close it in the history.
	phi1 := paperex.Phi1()
	service := hexpr.Frame(phi1.ID(), hexpr.Mu("h",
		hexpr.Ext(
			hexpr.B(hexpr.In("ping"), hexpr.V("h")),
			hexpr.B(hexpr.In("stop"), hexpr.V("h")), // never terminates by itself
		)))
	client := hexpr.Open("r1", hexpr.NoPolicy, hexpr.SendThen("ping", hexpr.Eps()))
	repo := network.Repository{"srv": service}
	cfg := network.NewConfig(repo, paperex.Policies(),
		network.Client{Loc: "cl", Expr: client, Plan: network.Plan{"r1": "srv"}})
	res := cfg.Run(network.RunOptions{})
	if res.Status != network.Completed {
		t.Fatalf("status = %s (%s)", res.Status, res)
	}
	h := cfg.Comps[0].Hist
	if !h.Balanced() {
		t.Errorf("history must be balanced thanks to Φ: %s", h)
	}
}

func TestConfigKeyAndString(t *testing.T) {
	cfg := c1Config(plan1())
	if cfg.Key() == "" || cfg.String() == "" {
		t.Error("Key/String must render")
	}
	if cfg.Done() {
		t.Error("fresh config is not done")
	}
}

func TestRepositoryLocations(t *testing.T) {
	locs := paperex.Repository()
	repo := network.Repository{}
	for l, e := range locs {
		repo[l] = e
	}
	got := repo.Locations()
	if len(got) != 5 || got[0] != "br" || got[4] != "s4" {
		t.Errorf("Locations = %v", got)
	}
}
