package network

import (
	"fmt"

	"susc/internal/hexpr"
	"susc/internal/history"
)

// MoveGroup is one plan-independent unit of the enabled-move relation of a
// session tree: either a single concrete move (Req == "", len(Moves) == 1),
// or a lazily-bound session opening (Req != ""), whose Moves instantiate
// the same open once per candidate service location, in candidate order.
// All moves of an open group share the same Label and Items (they differ
// only in the selected service), so a monitor needs to be advanced once per
// group, not once per candidate.
type MoveGroup struct {
	Req   hexpr.RequestID
	Moves []Move
}

// Candidates supplies, per request, the candidate service locations a lazy
// exploration branches over — typically the repository locations whose
// service is compliant with the request body. Locations absent from the
// repository are ignored. Returning an error aborts the walk.
type Candidates func(req hexpr.RequestID) ([]hexpr.Location, error)

// TreeMovesLazy is the plan-free analogue of TreeMovesStep: instead of
// resolving a session-opening through a plan, it emits one open group per
// enabled open, branching over the candidate services. Projecting the
// groups under a complete plan π — keeping every concrete group and, for
// every open group, exactly the move whose OpenLoc is π(Req) — yields
// precisely TreeMovesStep(n, π, repo, step), in the same order, whenever π
// binds every emitted request to one of its listed candidates. Open groups
// with no candidate are dropped: no such plan enables them.
func TreeMovesLazy(n Node, repo Repository, cands Candidates, step StepFunc) ([]MoveGroup, error) {
	return treeMovesLazyInto(nil, n, repo, cands, step)
}

// treeMovesLazyInto appends the groups of n to out: one growing
// accumulator for the whole walk instead of a slice per recursion level.
func treeMovesLazyInto(out []MoveGroup, n Node, repo Repository, cands Candidates, step StepFunc) ([]MoveGroup, error) {
	switch t := n.(type) {
	case Leaf:
		return leafMovesLazyInto(out, t, repo, cands, step)
	case Pair:
		// (Session): evolve one side, keeping every candidate's annotations
		start := len(out)
		out, err := treeMovesLazyInto(out, t.Left, repo, cands, step)
		if err != nil {
			return nil, err
		}
		for _, g := range out[start:] {
			for i := range g.Moves {
				g.Moves[i].Tree = Pair{Left: g.Moves[i].Tree, Right: t.Right}
			}
		}
		mid := len(out)
		out, err = treeMovesLazyInto(out, t.Right, repo, cands, step)
		if err != nil {
			return nil, err
		}
		for _, g := range out[mid:] {
			for i := range g.Moves {
				g.Moves[i].Tree = Pair{Left: t.Left, Right: g.Moves[i].Tree}
			}
		}
		// (Synch) and (Close) need both sides to be leaves; they never
		// open sessions, so they are always concrete.
		l, lok := t.Left.(Leaf)
		r, rok := t.Right.(Leaf)
		if lok && rok {
			for _, m := range pairMoves(l, r, step) {
				out = append(out, MoveGroup{Moves: []Move{m}})
			}
		}
		return out, nil
	}
	panic(fmt.Sprintf("network: unknown node %T", n))
}

// leafMovesLazyInto mirrors leafMoves, with LOpen branching over candidates
// instead of resolving through a plan. The two must stay in lock-step; the
// projection property test (lazy_test.go) guards the correspondence.
func leafMovesLazyInto(out []MoveGroup, l Leaf, repo Repository, cands Candidates, step StepFunc) ([]MoveGroup, error) {
	for _, tr := range step(l.Expr) {
		switch tr.Label.Kind {
		case hexpr.LEvent:
			out = append(out, MoveGroup{Moves: []Move{{
				Label: tr.Label,
				Items: []history.Item{history.EventItem(tr.Label.Event)},
				Tree:  Leaf{Loc: l.Loc, Expr: tr.To},
			}}})
		case hexpr.LFrameOpen:
			var items []history.Item
			if tr.Label.Policy != hexpr.NoPolicy {
				items = []history.Item{history.OpenItem(tr.Label.Policy)}
			}
			out = append(out, MoveGroup{Moves: []Move{{
				Label: tr.Label, Items: items, Tree: Leaf{Loc: l.Loc, Expr: tr.To},
			}}})
		case hexpr.LFrameClose:
			var items []history.Item
			if tr.Label.Policy != hexpr.NoPolicy {
				items = []history.Item{history.CloseItem(tr.Label.Policy)}
			}
			out = append(out, MoveGroup{Moves: []Move{{
				Label: tr.Label, Items: items, Tree: Leaf{Loc: l.Loc, Expr: tr.To},
			}}})
		case hexpr.LOpen:
			locs, err := cands(tr.Label.Req)
			if err != nil {
				return nil, err
			}
			var items []history.Item
			if tr.Label.Policy != hexpr.NoPolicy {
				items = []history.Item{history.OpenItem(tr.Label.Policy)}
			}
			g := MoveGroup{Req: tr.Label.Req}
			for _, loc := range locs {
				service, ok := repo[loc]
				if !ok {
					continue // dangling candidate: not enabled
				}
				g.Moves = append(g.Moves, Move{
					Label:   tr.Label,
					Items:   items,
					OpenLoc: loc,
					Tree: Pair{
						Left:  Leaf{Loc: l.Loc, Expr: tr.To},
						Right: Leaf{Loc: loc, Expr: service},
					},
				})
			}
			if len(g.Moves) > 0 {
				out = append(out, g)
			}
		}
	}
	return out, nil
}
