package network_test

import (
	"testing"

	"susc/internal/hexpr"
	"susc/internal/network"
	"susc/internal/paperex"
)

// TestPairMovesBothOrientations: [S,S′] ≡ [S′,S] — the close can be fired
// by either side of the pair.
func TestPairMovesBothOrientations(t *testing.T) {
	closer := network.Leaf{Loc: "a", Expr: hexpr.CloseTag{Req: "r1", Policy: hexpr.NoPolicy}}
	other := network.Leaf{Loc: "b", Expr: hexpr.Eps()}
	for _, pair := range []network.Pair{
		{Left: closer, Right: other},
		{Left: other, Right: closer},
	} {
		moves := network.TreeMoves(pair, network.Plan{}, network.Repository{})
		foundClose := false
		for _, m := range moves {
			if m.Label.Kind == hexpr.LClose {
				foundClose = true
				if leaf, ok := m.Tree.(network.Leaf); !ok || leaf.Loc != "a" {
					t.Errorf("close must keep the closing side: %v", m.Tree)
				}
				if m.ReleaseLoc != "b" {
					t.Errorf("release loc = %s, want b", m.ReleaseLoc)
				}
			}
		}
		if !foundClose {
			t.Errorf("no close move for orientation %s", pair.Key())
		}
	}
}

// TestSynchOnlyBetweenLeavesOfSamePair: a nested session blocks the outer
// communication until it closes.
func TestSynchOnlyBetweenLeavesOfSamePair(t *testing.T) {
	// outer: [cl: a? …, [mid: b̄ …, inner: b? …]]: cl cannot talk to mid
	cl := network.Leaf{Loc: "cl", Expr: hexpr.RecvThen("x", hexpr.Eps())}
	mid := network.Leaf{Loc: "mid", Expr: hexpr.SendThen("b", hexpr.SendThen("x", hexpr.Eps()))}
	inner := network.Leaf{Loc: "in", Expr: hexpr.RecvThen("b", hexpr.Eps())}
	tree := network.Pair{Left: cl, Right: network.Pair{Left: mid, Right: inner}}
	moves := network.TreeMoves(tree, network.Plan{}, network.Repository{})
	for _, m := range moves {
		if m.Label.Kind != hexpr.LTau {
			t.Errorf("unexpected non-τ move %s", m.Label)
		}
	}
	if len(moves) != 1 {
		t.Fatalf("only the inner b synchronisation should be enabled, got %d moves", len(moves))
	}
}

// TestEventInsideNestedSessionPropagates: Access moves bubble through
// enclosing pairs and keep their annotations.
func TestEventInsideNestedSessionPropagates(t *testing.T) {
	ev := network.Leaf{Loc: "svc", Expr: hexpr.Act(hexpr.E("sgn", hexpr.Sym("s1")))}
	tree := network.Pair{
		Left:  network.Leaf{Loc: "cl", Expr: hexpr.RecvThen("x", hexpr.Eps())},
		Right: network.Pair{Left: network.Leaf{Loc: "br", Expr: hexpr.RecvThen("y", hexpr.Eps())}, Right: ev},
	}
	moves := network.TreeMoves(tree, network.Plan{}, network.Repository{})
	if len(moves) != 1 || moves[0].Label.Kind != hexpr.LEvent {
		t.Fatalf("moves = %v", moves)
	}
	if len(moves[0].Items) != 1 {
		t.Errorf("event move must log one item")
	}
}

// TestOpenInsideSessionTagsLocation: nested opens carry OpenLoc through
// the Session rule.
func TestOpenInsideSessionTagsLocation(t *testing.T) {
	repo := network.Repository{"svc": hexpr.RecvThen("q", hexpr.Eps())}
	plan := network.Plan{"r9": "svc"}
	opener := network.Leaf{Loc: "br",
		Expr: hexpr.Open("r9", hexpr.NoPolicy, hexpr.SendThen("q", hexpr.Eps()))}
	tree := network.Pair{
		Left:  network.Leaf{Loc: "cl", Expr: hexpr.RecvThen("x", hexpr.Eps())},
		Right: opener,
	}
	moves := network.TreeMoves(tree, plan, repo)
	if len(moves) != 1 || moves[0].Label.Kind != hexpr.LOpen {
		t.Fatalf("moves = %v", moves)
	}
	if moves[0].OpenLoc != "svc" {
		t.Errorf("OpenLoc = %s, want svc (annotation must survive rule Session)", moves[0].OpenLoc)
	}
}

func TestValidMovesFiltering(t *testing.T) {
	// the only enabled move violates φ₂ (blacklisted sgn): ValidMoves
	// filters it, Moves keeps it
	phi2 := paperex.Phi2()
	cfg := network.NewConfig(network.Repository{}, paperex.Policies(),
		network.Client{Loc: "cl", Expr: hexpr.Frame(phi2.ID(),
			hexpr.Act(hexpr.E(paperex.EvSgn, hexpr.Sym("s1")))), Plan: network.Plan{}})
	monitors := cfg.NewMonitors()
	// first move: the frame opens — fine
	all := cfg.Moves()
	if len(all) != 1 {
		t.Fatalf("moves = %d", len(all))
	}
	if err := cfg.Apply(all[0], monitors); err != nil {
		t.Fatal(err)
	}
	// now the sgn event is syntactically enabled but invalid
	if n := len(cfg.Moves()); n != 1 {
		t.Fatalf("raw moves = %d, want 1", n)
	}
	if n := len(cfg.ValidMoves(monitors)); n != 0 {
		t.Fatalf("valid moves = %d, want 0", n)
	}
}
