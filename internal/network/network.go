// Package network implements the networks of services of Definition 2 and
// their operational semantics (the rules Open, Close, Session, Net, Access
// and Synch of §3): configurations of parallel components with (possibly
// nested) sessions, a trusted repository, plans binding requests to
// service locations, shared per-component histories, and the run-time
// validity monitor ⊨ η.
//
// The interpreter can run *monitored* (invalid moves are pruned, as the
// paper's angelic semantics prescribes — this is the run-time monitor) or
// *free* (all syntactically enabled moves; what a statically verified plan
// makes safe). internal/verify explores the same move relation
// exhaustively to validate plans.
package network

import (
	"fmt"
	"sort"
	"strings"

	"susc/internal/hexpr"
	"susc/internal/history"
	"susc/internal/policy"
)

// Plan is the orchestration π: it binds each request identifier to the
// location of the service that must answer it.
type Plan map[hexpr.RequestID]hexpr.Location

// Key renders the plan canonically.
func (p Plan) Key() string {
	reqs := make([]string, 0, len(p))
	for r := range p {
		reqs = append(reqs, string(r))
	}
	sort.Strings(reqs)
	parts := make([]string, len(reqs))
	for i, r := range reqs {
		parts[i] = r + ">" + string(p[hexpr.RequestID(r)])
	}
	return "{" + strings.Join(parts, ",") + "}"
}

func (p Plan) String() string { return p.Key() }

// Clone returns a copy of the plan.
func (p Plan) Clone() Plan {
	out := make(Plan, len(p))
	for k, v := range p {
		out[k] = v
	}
	return out
}

// Repository is the global trusted repository R = {ℓj : Hj}: services
// published at locations, always available for joining sessions (services
// replicate at will, so taking a service does not consume it).
type Repository map[hexpr.Location]hexpr.Expr

// Locations returns the sorted locations of the repository.
func (r Repository) Locations() []hexpr.Location {
	out := make([]hexpr.Location, 0, len(r))
	for l := range r {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Node is a session tree S ::= ℓ:H | [S, S′]. The session constructor is
// commutative ([S,S′] ≡ [S′,S]); the implementation keeps the orientation
// it built (initiator on the left) but treats both orientations in the
// rules that inspect pairs.
type Node interface {
	isNode()
	// Key is a canonical rendering of the tree.
	Key() string
}

// Leaf is a located process ℓ:H.
type Leaf struct {
	Loc  hexpr.Location
	Expr hexpr.Expr
}

// Pair is a session [S, S′] between two participants.
type Pair struct {
	Left, Right Node
}

func (Leaf) isNode() {}
func (Pair) isNode() {}

// Key implements Node.
func (l Leaf) Key() string { return string(l.Loc) + ":" + l.Expr.Key() }

// Key implements Node.
func (p Pair) Key() string { return "[" + p.Left.Key() + " , " + p.Right.Key() + "]" }

// Done reports whether the tree has fully terminated: it is a single leaf
// with the terminated expression.
func Done(n Node) bool {
	l, ok := n.(Leaf)
	return ok && hexpr.IsNil(l.Expr)
}

// Component is one top-level parallel component of a network: a session
// tree, its execution history, and the plan driving its requests.
type Component struct {
	Plan Plan
	Tree Node
	Hist history.History
}

// Config is a network configuration: the parallel composition of
// components, evolving against a repository and a policy table.
//
// Avail optionally bounds service availability (a §5 extension of the
// paper, which lets services "replicate their code at will"): locations
// present in the map have that many replicas; opening a session consumes
// one, closing it releases one; locations absent from the map replicate
// unboundedly. A nil map means unbounded availability everywhere.
type Config struct {
	Repo  Repository
	Table *policy.Table
	Comps []*Component
	Avail map[hexpr.Location]int
}

// NewConfig builds the initial configuration for the given clients, each
// hosted at its location with its plan and an empty history.
func NewConfig(repo Repository, table *policy.Table, clients ...Client) *Config {
	cfg := &Config{Repo: repo, Table: table}
	for _, c := range clients {
		cfg.Comps = append(cfg.Comps, &Component{
			Plan: c.Plan,
			Tree: Leaf{Loc: c.Loc, Expr: c.Expr},
		})
	}
	return cfg
}

// WithAvailability bounds the availability of the given locations and
// returns the configuration for chaining. The map is copied.
func (c *Config) WithAvailability(avail map[hexpr.Location]int) *Config {
	c.Avail = make(map[hexpr.Location]int, len(avail))
	for l, n := range avail {
		c.Avail[l] = n
	}
	return c
}

// Client is an initial component description.
type Client struct {
	Loc  hexpr.Location
	Expr hexpr.Expr
	Plan Plan
}

// Done reports whether every component has fully terminated.
func (c *Config) Done() bool {
	for _, comp := range c.Comps {
		if !Done(comp.Tree) {
			return false
		}
	}
	return true
}

// Key renders the configuration trees canonically (histories excluded).
func (c *Config) Key() string {
	parts := make([]string, len(c.Comps))
	for i, comp := range c.Comps {
		parts[i] = comp.Tree.Key()
	}
	return strings.Join(parts, " || ")
}

func (c *Config) String() string {
	var b strings.Builder
	for i, comp := range c.Comps {
		fmt.Fprintf(&b, "component %d (plan %s)\n  tree: %s\n  hist: %s\n",
			i, comp.Plan, comp.Tree.Key(), comp.Hist.String())
	}
	return b.String()
}
