package network_test

import (
	"reflect"
	"sort"
	"testing"

	"susc/internal/hexpr"
	"susc/internal/lts"
	"susc/internal/network"
	"susc/internal/paperex"
)

// project restricts lazy move groups to a concrete plan: concrete groups
// survive as-is, open groups keep exactly the candidate the plan selects
// (nothing, when the plan leaves the request unbound).
func project(groups []network.MoveGroup, plan network.Plan) []network.Move {
	var out []network.Move
	for _, g := range groups {
		if g.Req == "" {
			out = append(out, g.Moves...)
			continue
		}
		loc, ok := plan[g.Req]
		if !ok {
			continue
		}
		for _, m := range g.Moves {
			if m.OpenLoc == loc {
				out = append(out, m)
			}
		}
	}
	return out
}

// TestLazyMovesProjection: for every tree reachable under a plan whose
// bindings all come from the candidate sets, projecting TreeMovesLazy under
// the plan equals TreeMovesStep — same moves, same order. Explored over the
// paper's hotel-booking world under several plans.
func TestLazyMovesProjection(t *testing.T) {
	repo := network.Repository(paperex.Repository())
	var all []hexpr.Location
	for l := range repo {
		all = append(all, l)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	cands := func(hexpr.RequestID) ([]hexpr.Location, error) { return all, nil }

	plans := []network.Plan{
		{"r1": paperex.LocBr, "r3": paperex.LocS1},
		{"r1": paperex.LocBr, "r3": paperex.LocS4},
		{"r2": paperex.LocBr, "r3": paperex.LocS2},
		{"r1": paperex.LocBr}, // r3 unbound: its open group projects away
		{},
	}
	for _, client := range []hexpr.Expr{paperex.C1(), paperex.C2()} {
		for _, plan := range plans {
			start := network.Node(network.Leaf{Loc: "cl", Expr: client})
			seen := map[string]bool{start.Key(): true}
			queue := []network.Node{start}
			for len(queue) > 0 {
				tree := queue[0]
				queue = queue[1:]
				want := network.TreeMovesStep(tree, plan, repo, lts.Step)
				groups, err := network.TreeMovesLazy(tree, repo, cands, lts.Step)
				if err != nil {
					t.Fatal(err)
				}
				got := project(groups, plan)
				if !movesEqual(got, want) {
					t.Fatalf("plan %v, tree %s:\nprojected = %+v\ndirect    = %+v",
						plan, tree.Key(), got, want)
				}
				for _, m := range want {
					if k := m.Tree.Key(); !seen[k] {
						seen[k] = true
						queue = append(queue, m.Tree)
					}
				}
			}
		}
	}
}

// movesEqual compares move slices structurally, treating nil and empty
// item slices as equal (the two code paths build them differently).
func movesEqual(a, b []network.Move) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		x, y := a[i], b[i]
		if len(x.Items) == 0 && len(y.Items) == 0 {
			x.Items, y.Items = nil, nil
		}
		if !reflect.DeepEqual(x, y) {
			return false
		}
	}
	return true
}

// TestLazyMovesGroups: open groups list one move per candidate in candidate
// order, all sharing the label and items; dangling candidates are dropped;
// candidate-less groups are elided.
func TestLazyMovesGroups(t *testing.T) {
	repo := network.Repository{
		"a": hexpr.RecvThen("q", hexpr.Eps()),
		"b": hexpr.RecvThen("q", hexpr.Eps()),
	}
	open := network.Leaf{Loc: "cl",
		Expr: hexpr.Open("r1", hexpr.NoPolicy, hexpr.SendThen("q", hexpr.Eps()))}
	cands := func(req hexpr.RequestID) ([]hexpr.Location, error) {
		return []hexpr.Location{"a", "ghost", "b"}, nil
	}
	groups, err := network.TreeMovesLazy(open, repo, cands, lts.Step)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 1 || groups[0].Req != "r1" {
		t.Fatalf("groups = %+v", groups)
	}
	var locs []hexpr.Location
	for _, m := range groups[0].Moves {
		locs = append(locs, m.OpenLoc)
		if m.Label.Kind != hexpr.LOpen {
			t.Errorf("open group carries non-open move %s", m.Label)
		}
	}
	if !reflect.DeepEqual(locs, []hexpr.Location{"a", "b"}) {
		t.Fatalf("candidate locs = %v, want [a b] (ghost dropped, order kept)", locs)
	}

	// No candidate in the repository: the group disappears entirely.
	none := func(hexpr.RequestID) ([]hexpr.Location, error) {
		return []hexpr.Location{"ghost"}, nil
	}
	groups, err = network.TreeMovesLazy(open, repo, none, lts.Step)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 0 {
		t.Fatalf("groups = %+v, want none", groups)
	}
}
