package network_test

import (
	"testing"

	"susc/internal/hexpr"
	"susc/internal/network"
	"susc/internal/paperex"
)

// echoService receives one hello.
func echoService() hexpr.Expr { return hexpr.RecvThen("hello", hexpr.Eps()) }

// nestedClient opens echo twice, the second session nested in the first.
func nestedClient() hexpr.Expr {
	return hexpr.Open("ra", hexpr.NoPolicy,
		hexpr.SendThen("hello",
			hexpr.Open("rb", hexpr.NoPolicy,
				hexpr.SendThen("hello", hexpr.Eps()))))
}

// sequentialClient opens echo twice, one session after the other.
func sequentialClient() hexpr.Expr {
	return hexpr.Cat(
		hexpr.Open("ra", hexpr.NoPolicy, hexpr.SendThen("hello", hexpr.Eps())),
		hexpr.Open("rb", hexpr.NoPolicy, hexpr.SendThen("hello", hexpr.Eps())),
	)
}

func echoConfig(client hexpr.Expr, capacity int) *network.Config {
	repo := network.Repository{"echo": echoService()}
	plan := network.Plan{"ra": "echo", "rb": "echo"}
	cfg := network.NewConfig(repo, paperex.Policies(),
		network.Client{Loc: "cl", Expr: client, Plan: plan})
	if capacity >= 0 {
		cfg.WithAvailability(map[hexpr.Location]int{"echo": capacity})
	}
	return cfg
}

func TestAvailabilityNestedSessionsDeadlockOnOneReplica(t *testing.T) {
	res := echoConfig(nestedClient(), 1).Run(network.RunOptions{})
	if res.Status != network.Deadlock {
		t.Fatalf("nested sessions with 1 replica: %s, want deadlock", res)
	}
}

func TestAvailabilityNestedSessionsCompleteOnTwoReplicas(t *testing.T) {
	res := echoConfig(nestedClient(), 2).Run(network.RunOptions{})
	if res.Status != network.Completed {
		t.Fatalf("nested sessions with 2 replicas: %s, want completed", res)
	}
}

func TestAvailabilitySequentialSessionsReuseReplica(t *testing.T) {
	// Closing a session releases the replica, so one replica suffices for
	// sequential use.
	res := echoConfig(sequentialClient(), 1).Run(network.RunOptions{})
	if res.Status != network.Completed {
		t.Fatalf("sequential sessions with 1 replica: %s, want completed", res)
	}
}

func TestAvailabilityUnlimitedByDefault(t *testing.T) {
	res := echoConfig(nestedClient(), -1).Run(network.RunOptions{})
	if res.Status != network.Completed {
		t.Fatalf("unbounded availability: %s, want completed", res)
	}
	// Unlisted locations are unbounded even when the map exists.
	cfg := echoConfig(nestedClient(), -1)
	cfg.WithAvailability(map[hexpr.Location]int{"other": 0})
	if res := cfg.Run(network.RunOptions{}); res.Status != network.Completed {
		t.Fatalf("unlisted location should be unbounded: %s", res)
	}
}

func TestAvailabilityZeroBlocksImmediately(t *testing.T) {
	res := echoConfig(sequentialClient(), 0).Run(network.RunOptions{})
	if res.Status != network.Deadlock {
		t.Fatalf("0 replicas: %s, want deadlock", res)
	}
}

func TestAvailabilitySharedAcrossComponents(t *testing.T) {
	// Two clients compete for one replica of a service that never answers
	// until the session is closed by the client; since each session opens
	// and closes promptly here, both still complete.
	repo := network.Repository{"echo": echoService()}
	c := hexpr.Open("ra", hexpr.NoPolicy, hexpr.SendThen("hello", hexpr.Eps()))
	c2 := hexpr.Open("rb", hexpr.NoPolicy, hexpr.SendThen("hello", hexpr.Eps()))
	cfg := network.NewConfig(repo, paperex.Policies(),
		network.Client{Loc: "cl1", Expr: c, Plan: network.Plan{"ra": "echo"}},
		network.Client{Loc: "cl2", Expr: c2, Plan: network.Plan{"rb": "echo"}},
	).WithAvailability(map[hexpr.Location]int{"echo": 1})
	res := cfg.Run(network.RunOptions{})
	if res.Status != network.Completed {
		t.Fatalf("two prompt clients over 1 replica: %s, want completed", res)
	}
	if cfg.Avail["echo"] != 1 {
		t.Errorf("replica not released: avail = %d", cfg.Avail["echo"])
	}
}
