package network

import (
	"fmt"

	"susc/internal/hexpr"
	"susc/internal/history"
	"susc/internal/lts"
)

// Move is one enabled transition of a component: the observable label, the
// resulting session tree, and the history items the move logs.
type Move struct {
	// Comp is the index of the component the move belongs to (set by
	// Config.Moves).
	Comp int
	// Label is the transition label (τ for synchronisations).
	Label hexpr.Label
	// Items are the history items the move appends to the component
	// history (⌊φ for Open, Φ(H″)·⌋φ for Close, γ for Access, none for
	// Synch).
	Items []history.Item
	// Tree is the component tree after the move.
	Tree Node
	// OpenLoc is the service location a session-opening move instantiates
	// ("" otherwise); with bounded availability it consumes one replica.
	OpenLoc hexpr.Location
	// ReleaseLoc is the service location a session-closing move releases
	// ("" otherwise).
	ReleaseLoc hexpr.Location
}

// TreeMoves computes the enabled moves of a session tree under a plan and
// repository, per the rules of §3:
//
//   - Access: a leaf fires an event or framing action, logged;
//   - Open:   a leaf fires open_{r,φ}; the plan selects ℓj, the repository
//     supplies Hj, the leaf becomes [ℓi:H′, ℓj:Hj], ⌊φ is logged;
//   - Close:  a pair of leaves one of which fires close_{r,φ} collapses to
//     the closing leaf; Φ(H″)·⌋φ is logged;
//   - Synch:  a pair of leaves fires complementary actions a/ā, giving τ;
//   - Session: moves propagate through enclosing pairs.
//
// Opens whose request is unbound in the plan, or bound to a location
// missing from the repository, are simply not enabled (the network is
// stuck on them; plan validation flags this).
func TreeMoves(n Node, plan Plan, repo Repository) []Move {
	return TreeMovesStep(n, plan, repo, lts.Step)
}

// StepFunc computes the one-step successors of a stand-alone expression.
// lts.Step is the reference implementation; explorations pass a memoised
// variant (memo.Cache.Steps) to amortise stepping across states and plans.
type StepFunc func(hexpr.Expr) []lts.Transition

// TreeMovesStep is TreeMoves with an explicit step function. The step
// function's result slices are treated as read-only.
func TreeMovesStep(n Node, plan Plan, repo Repository, step StepFunc) []Move {
	switch t := n.(type) {
	case Leaf:
		return leafMoves(t, plan, repo, step)
	case Pair:
		var out []Move
		// (Session): evolve one side, keeping the move's annotations
		for _, m := range TreeMovesStep(t.Left, plan, repo, step) {
			m.Tree = Pair{Left: m.Tree, Right: t.Right}
			out = append(out, m)
		}
		for _, m := range TreeMovesStep(t.Right, plan, repo, step) {
			m.Tree = Pair{Left: t.Left, Right: m.Tree}
			out = append(out, m)
		}
		// (Synch) and (Close) need both sides to be leaves
		l, lok := t.Left.(Leaf)
		r, rok := t.Right.(Leaf)
		if lok && rok {
			out = append(out, pairMoves(l, r, step)...)
		}
		return out
	}
	panic(fmt.Sprintf("network: unknown node %T", n))
}

// leafMoves yields the Access and Open moves of a single located process.
// Communication and close steps of the leaf are handled by the enclosing
// pair (they need a partner).
func leafMoves(l Leaf, plan Plan, repo Repository, step StepFunc) []Move {
	var out []Move
	for _, tr := range step(l.Expr) {
		switch tr.Label.Kind {
		case hexpr.LEvent:
			out = append(out, Move{
				Label: tr.Label,
				Items: []history.Item{history.EventItem(tr.Label.Event)},
				Tree:  Leaf{Loc: l.Loc, Expr: tr.To},
			})
		case hexpr.LFrameOpen:
			var items []history.Item
			if tr.Label.Policy != hexpr.NoPolicy {
				items = []history.Item{history.OpenItem(tr.Label.Policy)}
			}
			out = append(out, Move{Label: tr.Label, Items: items, Tree: Leaf{Loc: l.Loc, Expr: tr.To}})
		case hexpr.LFrameClose:
			var items []history.Item
			if tr.Label.Policy != hexpr.NoPolicy {
				items = []history.Item{history.CloseItem(tr.Label.Policy)}
			}
			out = append(out, Move{Label: tr.Label, Items: items, Tree: Leaf{Loc: l.Loc, Expr: tr.To}})
		case hexpr.LOpen:
			loc, ok := plan[tr.Label.Req]
			if !ok {
				continue // unplanned request: not enabled
			}
			service, ok := repo[loc]
			if !ok {
				continue // dangling location: not enabled
			}
			var items []history.Item
			if tr.Label.Policy != hexpr.NoPolicy {
				items = []history.Item{history.OpenItem(tr.Label.Policy)}
			}
			out = append(out, Move{
				Label:   tr.Label,
				Items:   items,
				OpenLoc: loc,
				Tree: Pair{
					Left:  Leaf{Loc: l.Loc, Expr: tr.To},
					Right: Leaf{Loc: loc, Expr: service},
				},
			})
		}
	}
	return out
}

// pairMoves yields the Synch and Close moves of a session whose two sides
// are leaves. [S,S′] ≡ [S′,S]: both orientations are considered.
func pairMoves(l, r Leaf, step StepFunc) []Move {
	var out []Move
	ls := step(l.Expr)
	rs := step(r.Expr)
	// (Synch): complementary communications become τ
	for _, a := range ls {
		if a.Label.Kind != hexpr.LComm {
			continue
		}
		for _, b := range rs {
			if b.Label.Kind != hexpr.LComm || b.Label.Comm != a.Label.Comm.Co() {
				continue
			}
			out = append(out, Move{
				Label: hexpr.Tau,
				Tree: Pair{
					Left:  Leaf{Loc: l.Loc, Expr: a.To},
					Right: Leaf{Loc: r.Loc, Expr: b.To},
				},
			})
		}
	}
	// (Close): either side may close the session; the other side is
	// terminated, its dangling framings closed in the history via Φ.
	out = append(out, closeMoves(l, r, step)...)
	out = append(out, closeMoves(r, l, step)...)
	return out
}

func closeMoves(closer, other Leaf, step StepFunc) []Move {
	var out []Move
	for _, tr := range step(closer.Expr) {
		if tr.Label.Kind != hexpr.LClose {
			continue
		}
		items := ClosingFrames(other.Expr)
		if tr.Label.Policy != hexpr.NoPolicy {
			items = append(items, history.CloseItem(tr.Label.Policy))
		}
		out = append(out, Move{
			Label:      tr.Label,
			Items:      items,
			ReleaseLoc: other.Loc,
			Tree:       Leaf{Loc: closer.Loc, Expr: tr.To},
		})
	}
	return out
}

// ClosingFrames computes Φ(H): the ⌋φ markers of the framings still open
// in a terminated service's residual code, left to right (innermost
// first), as history items:
//
//	Φ(H₁·H₂) = Φ(H₁)·Φ(H₂)   Φ(⌋φ) = ⌋φ   Φ(H) = ε otherwise
func ClosingFrames(e hexpr.Expr) []history.Item {
	switch t := e.(type) {
	case hexpr.FrameClose:
		if t.Policy == hexpr.NoPolicy {
			return nil
		}
		return []history.Item{history.CloseItem(t.Policy)}
	case hexpr.Seq:
		return append(ClosingFrames(t.Left), ClosingFrames(t.Right)...)
	default:
		return nil
	}
}

// Moves returns every syntactically enabled move of the configuration
// (rule Net: any component may step), honouring bounded availability:
// session openings towards a location whose replicas are exhausted are not
// enabled. Monitored executions filter further with ValidMoves.
func (c *Config) Moves() []Move {
	var out []Move
	for i, comp := range c.Comps {
		for _, m := range TreeMoves(comp.Tree, comp.Plan, c.Repo) {
			if m.OpenLoc != "" && !c.available(m.OpenLoc) {
				continue
			}
			m.Comp = i
			out = append(out, m)
		}
	}
	return out
}

// available reports whether the location still has a replica to offer.
func (c *Config) available(loc hexpr.Location) bool {
	if c.Avail == nil {
		return true
	}
	n, limited := c.Avail[loc]
	return !limited || n > 0
}

// ValidMoves returns the enabled moves whose logged history items keep the
// component history valid — the angelic, monitored semantics. The monitors
// argument must hold one monitor per component, tracking its history so
// far (see NewMonitors).
func (c *Config) ValidMoves(monitors []*history.Monitor) []Move {
	all := c.Moves()
	out := make([]Move, 0, len(all))
	for _, m := range all {
		if MoveValid(monitors[m.Comp], m) {
			out = append(out, m)
		}
	}
	return out
}

// MoveValid reports whether applying the move's history items to (a copy
// of) the monitor succeeds.
func MoveValid(m *history.Monitor, mv Move) bool {
	if len(mv.Items) == 0 {
		return true
	}
	snap := m.Snapshot()
	for _, it := range mv.Items {
		if err := snap.Append(it); err != nil {
			return false
		}
	}
	return true
}

// NewMonitors builds one fresh monitor per component.
func (c *Config) NewMonitors() []*history.Monitor {
	out := make([]*history.Monitor, len(c.Comps))
	for i := range c.Comps {
		out[i] = history.NewMonitor(c.Table)
	}
	return out
}

// Apply executes a move: the component tree is replaced and the history
// extended. When monitors is non-nil the corresponding monitor consumes
// the items; an item the monitor rejects is a hard error (callers using
// ValidMoves never see it).
func (c *Config) Apply(m Move, monitors []*history.Monitor) error {
	comp := c.Comps[m.Comp]
	if monitors != nil {
		for _, it := range m.Items {
			if err := monitors[m.Comp].Append(it); err != nil {
				return err
			}
		}
	}
	comp.Tree = m.Tree
	comp.Hist = append(comp.Hist, m.Items...)
	if c.Avail != nil {
		if m.OpenLoc != "" {
			if _, limited := c.Avail[m.OpenLoc]; limited {
				c.Avail[m.OpenLoc]--
			}
		}
		if m.ReleaseLoc != "" {
			if _, limited := c.Avail[m.ReleaseLoc]; limited {
				c.Avail[m.ReleaseLoc]++
			}
		}
	}
	return nil
}
