package network

import (
	"fmt"
	"math/rand"
	"strings"

	"susc/internal/hexpr"
	"susc/internal/history"
)

// Status classifies how a run ended.
type Status int

const (
	// Completed: every component terminated.
	Completed Status = iota
	// Deadlock: some component is not terminated but no move is enabled —
	// either a missing communication (non-compliant services) or an
	// unbound request.
	Deadlock
	// SecurityAbort: moves were enabled but all of them would violate an
	// active policy; the monitor blocked the execution.
	SecurityAbort
	// OutOfFuel: the step budget was exhausted (possible with genuinely
	// infinite interactions).
	OutOfFuel
)

func (s Status) String() string {
	switch s {
	case Completed:
		return "completed"
	case Deadlock:
		return "deadlock"
	case SecurityAbort:
		return "security-abort"
	case OutOfFuel:
		return "out-of-fuel"
	}
	return "unknown"
}

// TraceEntry records one executed move.
type TraceEntry struct {
	Comp  int
	Label hexpr.Label
}

func (t TraceEntry) String() string { return fmt.Sprintf("%d:%s", t.Comp, t.Label) }

// Result is the outcome of a run.
type Result struct {
	Status Status
	Trace  []TraceEntry
	Steps  int
}

func (r *Result) String() string {
	parts := make([]string, len(r.Trace))
	for i, e := range r.Trace {
		parts[i] = e.String()
	}
	return fmt.Sprintf("%s after %d steps: %s", r.Status, r.Steps, strings.Join(parts, " "))
}

// RunOptions configures a run.
type RunOptions struct {
	// MaxSteps bounds the run; 0 means DefaultMaxSteps.
	MaxSteps int
	// Monitored prunes moves that would violate an active policy (the
	// run-time monitor). Unmonitored runs take any enabled move and never
	// abort on security (what a verified plan makes safe).
	Monitored bool
	// Rand drives the scheduler; nil picks the first enabled move
	// deterministically.
	Rand *rand.Rand
}

// DefaultMaxSteps is the default run budget.
const DefaultMaxSteps = 10000

// Run drives the configuration until completion, deadlock, security abort
// or fuel exhaustion, mutating the configuration in place.
func (c *Config) Run(opts RunOptions) *Result {
	maxSteps := opts.MaxSteps
	if maxSteps == 0 {
		maxSteps = DefaultMaxSteps
	}
	var monitors []*history.Monitor
	if opts.Monitored {
		monitors = c.NewMonitors()
		// replay existing histories, if any
		for i, comp := range c.Comps {
			if err := monitors[i].AppendAll(comp.Hist); err != nil {
				return &Result{Status: SecurityAbort}
			}
		}
	}
	res := &Result{}
	for res.Steps = 0; res.Steps < maxSteps; res.Steps++ {
		if c.Done() {
			res.Status = Completed
			return res
		}
		all := c.Moves()
		enabled := all
		if opts.Monitored {
			enabled = enabled[:0:0]
			for _, m := range all {
				if MoveValid(monitors[m.Comp], m) {
					enabled = append(enabled, m)
				}
			}
		}
		if len(enabled) == 0 {
			if opts.Monitored && len(all) > 0 {
				res.Status = SecurityAbort
			} else {
				res.Status = Deadlock
			}
			return res
		}
		var m Move
		if opts.Rand != nil {
			m = enabled[opts.Rand.Intn(len(enabled))]
		} else {
			m = enabled[0]
		}
		if err := c.Apply(m, monitors); err != nil {
			res.Status = SecurityAbort
			return res
		}
		res.Trace = append(res.Trace, TraceEntry{Comp: m.Comp, Label: m.Label})
	}
	res.Status = OutOfFuel
	return res
}

// Replay checks that the given label sequence is an enabled run of the
// configuration (used to reproduce the paper's Figure 3 computation).
// Because distinct moves can carry the same label (e.g. two τ
// synchronisations), the replay backtracks over all matching moves. On
// success the configuration is left in the final state and -1 is returned;
// otherwise the configuration is unchanged and the index of the deepest
// entry reached with no continuation is returned.
func (c *Config) Replay(entries []TraceEntry, monitored bool) int {
	var monitors []*history.Monitor
	if monitored {
		monitors = c.NewMonitors()
	}
	deepest := 0
	var search func(cur *Config, mons []*history.Monitor, i int) *Config
	search = func(cur *Config, mons []*history.Monitor, i int) *Config {
		if i > deepest {
			deepest = i
		}
		if i == len(entries) {
			return cur
		}
		want := entries[i]
		for _, m := range cur.Moves() {
			if m.Comp != want.Comp || m.Label.Key() != want.Label.Key() {
				continue
			}
			if monitored && !MoveValid(mons[m.Comp], m) {
				continue
			}
			next := cur.clone()
			var nextMons []*history.Monitor
			if monitored {
				nextMons = make([]*history.Monitor, len(mons))
				for j, mon := range mons {
					nextMons[j] = mon.Snapshot()
				}
			}
			if err := next.Apply(m, nextMons); err != nil {
				continue
			}
			if final := search(next, nextMons, i+1); final != nil {
				return final
			}
		}
		return nil
	}
	if final := search(c, monitors, 0); final != nil {
		c.Comps = final.Comps
		c.Avail = final.Avail
		return -1
	}
	return deepest
}

// clone deep-copies the mutable parts of the configuration (trees are
// immutable, plans are never mutated by the semantics).
func (c *Config) clone() *Config {
	comps := make([]*Component, len(c.Comps))
	for i, comp := range c.Comps {
		comps[i] = &Component{
			Plan: comp.Plan,
			Tree: comp.Tree,
			Hist: append(history.History{}, comp.Hist...),
		}
	}
	out := &Config{Repo: c.Repo, Table: c.Table, Comps: comps}
	if c.Avail != nil {
		out.Avail = make(map[hexpr.Location]int, len(c.Avail))
		for l, n := range c.Avail {
			out.Avail[l] = n
		}
	}
	return out
}
