package autom

import "sort"

// This file holds the witness-extraction and language-analysis helpers the
// semantic analyzers (internal/lint) and the explainers build on: shortest
// accepting runs (not just words), run reconstruction for a given word,
// reachability/co-reachability over the state graph, and language
// inclusion via the product construction — emptiness of L(A) ∖ L(B).

// AcceptingRun returns a shortest accepted word together with the state
// sequence of one accepting run for it (len(states) == len(word)+1, states
// starting at the start state). Both are nil when the language is empty.
//
// The word is BFS-minimal: no strictly shorter word is accepted. Among
// equally short words the lexicographically-least successor is explored
// first, so the result is deterministic.
func (a *NFA) AcceptingRun() (word []string, states []int) {
	type pred struct {
		prev int // BFS-parent state, -1 for the start
		sym  string
	}
	parent := make([]pred, a.n)
	seen := make([]bool, a.n)
	queue := []int{a.start}
	seen[a.start] = true
	parent[a.start] = pred{prev: -1}
	goal := -1
	for len(queue) > 0 && goal < 0 {
		s := queue[0]
		queue = queue[1:]
		if a.accept[s] {
			goal = s
			break
		}
		syms := make([]string, 0, len(a.edges[s]))
		for sym := range a.edges[s] {
			syms = append(syms, sym)
		}
		sort.Strings(syms)
		for _, sym := range syms {
			for _, t := range a.edges[s][sym] {
				if !seen[t] {
					seen[t] = true
					parent[t] = pred{prev: s, sym: sym}
					queue = append(queue, t)
				}
			}
		}
	}
	if goal < 0 {
		return nil, nil
	}
	word = []string{} // non-nil even for the empty word: nil means "empty language"
	for s := goal; s >= 0; s = parent[s].prev {
		states = append(states, s)
		if parent[s].prev >= 0 {
			word = append(word, parent[s].sym)
		}
	}
	reverseStrings(word)
	reverseInts(states)
	return word, states
}

// RunFor returns the state sequence of one accepting run over the word
// (len == len(word)+1), or nil when the word is rejected. Among the
// accepting runs, the one threading through the smallest state indices is
// chosen, so the result is deterministic.
func (a *NFA) RunFor(word []string) []int {
	// layers[i] is the set of states reachable after word[:i].
	layers := make([][]int, len(word)+1)
	layers[0] = []int{a.start}
	cur := map[int]bool{a.start: true}
	for i, sym := range word {
		next := map[int]bool{}
		for s := range cur {
			for _, t := range a.edges[s][sym] {
				next[t] = true
			}
		}
		if len(next) == 0 {
			return nil
		}
		layers[i+1] = setToSorted(next)
		cur = next
	}
	// pick the smallest accepting final state, then walk backwards choosing
	// the smallest predecessor with an edge on the layer's symbol.
	final := -1
	for _, s := range layers[len(word)] {
		if a.accept[s] {
			final = s
			break
		}
	}
	if final < 0 {
		return nil
	}
	states := make([]int, len(word)+1)
	states[len(word)] = final
	for i := len(word) - 1; i >= 0; i-- {
		sym := word[i]
		states[i] = -1
		for _, s := range layers[i] {
			for _, t := range a.edges[s][sym] {
				if t == states[i+1] {
					states[i] = s
					break
				}
			}
			if states[i] >= 0 {
				break
			}
		}
		if states[i] < 0 {
			return nil // unreachable: layers are forward-consistent
		}
	}
	return states
}

// Reachable returns, per state, whether it is reachable from the start
// state.
func (a *NFA) Reachable() []bool {
	seen := make([]bool, a.n)
	stack := []int{a.start}
	seen[a.start] = true
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, m := range a.edges[s] {
			for _, t := range m {
				if !seen[t] {
					seen[t] = true
					stack = append(stack, t)
				}
			}
		}
	}
	return seen
}

// Coreachable returns, per state, whether some accepting state is
// reachable from it (accepting states are co-reachable by definition).
// States that are not co-reachable are inert: entering one can never
// contribute to acceptance.
func (a *NFA) Coreachable() []bool {
	// reverse adjacency
	rev := make([][]int, a.n)
	for s := 0; s < a.n; s++ {
		for _, m := range a.edges[s] {
			for _, t := range m {
				rev[t] = append(rev[t], s)
			}
		}
	}
	out := make([]bool, a.n)
	var stack []int
	for s := range a.accept {
		if a.accept[s] {
			out[s] = true
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range rev[s] {
			if !out[p] {
				out[p] = true
				stack = append(stack, p)
			}
		}
	}
	return out
}

// WordTo returns a shortest word driving the automaton from the start
// state to the given state, with the state sequence of the run, or
// (nil, nil) when the state is unreachable. A reachable state yields
// states == [start … target] and len(word) == len(states)-1; for the
// start state itself the word is empty and states == [start].
func (a *NFA) WordTo(target int) (word []string, states []int) {
	type pred struct {
		prev int
		sym  string
	}
	parent := make([]pred, a.n)
	seen := make([]bool, a.n)
	queue := []int{a.start}
	seen[a.start] = true
	parent[a.start] = pred{prev: -1}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		if s == target {
			for x := s; x >= 0; x = parent[x].prev {
				states = append(states, x)
				if parent[x].prev >= 0 {
					word = append(word, parent[x].sym)
				}
			}
			reverseStrings(word)
			reverseInts(states)
			if word == nil {
				word = []string{}
			}
			return word, states
		}
		syms := make([]string, 0, len(a.edges[s]))
		for sym := range a.edges[s] {
			syms = append(syms, sym)
		}
		sort.Strings(syms)
		for _, sym := range syms {
			for _, t := range a.edges[s][sym] {
				if !seen[t] {
					seen[t] = true
					parent[t] = pred{prev: s, sym: sym}
					queue = append(queue, t)
				}
			}
		}
	}
	return nil, nil
}

// AcceptingRun returns a shortest accepted word with its (unique) state
// run, or (nil, nil) when the language is empty.
func (d *DFA) AcceptingRun() (word []string, states []int) {
	type pred struct {
		prev int
		sym  string
	}
	parent := make([]pred, len(d.Trans))
	seen := make([]bool, len(d.Trans))
	queue := []int{d.Start}
	seen[d.Start] = true
	parent[d.Start] = pred{prev: -1}
	goal := -1
	for len(queue) > 0 && goal < 0 {
		s := queue[0]
		queue = queue[1:]
		if d.Accept[s] {
			goal = s
			break
		}
		for ai, sym := range d.Alphabet {
			t := d.Trans[s][ai]
			if !seen[t] {
				seen[t] = true
				parent[t] = pred{prev: s, sym: sym}
				queue = append(queue, t)
			}
		}
	}
	if goal < 0 {
		return nil, nil
	}
	word = []string{} // non-nil even for the empty word: nil means "empty language"
	for s := goal; s >= 0; s = parent[s].prev {
		states = append(states, s)
		if parent[s].prev >= 0 {
			word = append(word, parent[s].sym)
		}
	}
	reverseStrings(word)
	reverseInts(states)
	return word, states
}

// Difference returns a DFA for L(d) ∖ L(e) = L(d) ∩ L(e)ᶜ. The alphabets
// must be equal (as for Product).
func (d *DFA) Difference(e *DFA) *DFA {
	return d.Intersect(e.Complement())
}

// Included decides language inclusion L(d) ⊆ L(e) via emptiness of the
// difference. When inclusion fails, the second result is a BFS-shortest
// separating word: accepted by d, rejected by e.
func (d *DFA) Included(e *DFA) (bool, []string) {
	sep := d.Difference(e).AcceptingPath()
	return sep == nil, sep
}

func setToSorted(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

func reverseStrings(s []string) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

func reverseInts(s []int) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}
