package autom

import (
	"fmt"
	"sort"
	"strings"
)

// DOT renders the NFA in Graphviz dot syntax. Accepting states are drawn
// as double circles; the start state is marked with an incoming arrow.
func (a *NFA) DOT(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	b.WriteString("  rankdir=LR;\n  node [shape=circle];\n")
	fmt.Fprintf(&b, "  __start [shape=point];\n  __start -> q%d;\n", a.start)
	for s := 0; s < a.n; s++ {
		shape := "circle"
		if a.accept[s] {
			shape = "doublecircle"
		}
		fmt.Fprintf(&b, "  q%d [shape=%s];\n", s, shape)
	}
	for s := 0; s < a.n; s++ {
		syms := make([]string, 0, len(a.edges[s]))
		for sym := range a.edges[s] {
			syms = append(syms, sym)
		}
		sort.Strings(syms)
		for _, sym := range syms {
			for _, t := range a.edges[s][sym] {
				fmt.Fprintf(&b, "  q%d -> q%d [label=%q];\n", s, t, sym)
			}
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// DOT renders the DFA in Graphviz dot syntax.
func (d *DFA) DOT(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	b.WriteString("  rankdir=LR;\n  node [shape=circle];\n")
	fmt.Fprintf(&b, "  __start [shape=point];\n  __start -> q%d;\n", d.Start)
	for s := range d.Trans {
		shape := "circle"
		if d.Accept[s] {
			shape = "doublecircle"
		}
		fmt.Fprintf(&b, "  q%d [shape=%s];\n", s, shape)
	}
	for s, row := range d.Trans {
		// group parallel edges by target for readability
		byTarget := map[int][]string{}
		for ai, t := range row {
			byTarget[t] = append(byTarget[t], d.Alphabet[ai])
		}
		targets := make([]int, 0, len(byTarget))
		for t := range byTarget {
			targets = append(targets, t)
		}
		sort.Ints(targets)
		for _, t := range targets {
			fmt.Fprintf(&b, "  q%d -> q%d [label=%q];\n", s, t, strings.Join(byTarget[t], ","))
		}
	}
	b.WriteString("}\n")
	return b.String()
}
