package autom

import (
	"reflect"
	"testing"
)

// chainNFA builds q0 -a-> q1 -b-> q2(*) with a distracting longer branch
// q0 -c-> q3 -c-> q4 -c-> q5(*).
func chainNFA() *NFA {
	a := NewNFA()
	q1, q2 := a.AddState(), a.AddState()
	q3, q4, q5 := a.AddState(), a.AddState(), a.AddState()
	a.AddEdge(0, "a", q1)
	a.AddEdge(q1, "b", q2)
	a.SetAccept(q2, true)
	a.AddEdge(0, "c", q3)
	a.AddEdge(q3, "c", q4)
	a.AddEdge(q4, "c", q5)
	a.SetAccept(q5, true)
	return a
}

func TestAcceptingRunShortest(t *testing.T) {
	a := chainNFA()
	word, states := a.AcceptingRun()
	if !reflect.DeepEqual(word, []string{"a", "b"}) {
		t.Fatalf("word = %v, want [a b]", word)
	}
	if !reflect.DeepEqual(states, []int{0, 1, 2}) {
		t.Fatalf("states = %v, want [0 1 2]", states)
	}
	if !a.Accepts(word) {
		t.Error("witness not accepted")
	}
}

func TestAcceptingRunEmptyLanguage(t *testing.T) {
	a := NewNFA()
	q1 := a.AddState()
	a.AddEdge(0, "a", q1) // no accepting state
	if word, states := a.AcceptingRun(); word != nil || states != nil {
		t.Fatalf("empty language: got %v / %v", word, states)
	}
}

func TestAcceptingRunEmptyWord(t *testing.T) {
	a := NewNFA()
	a.SetAccept(0, true)
	word, states := a.AcceptingRun()
	if word == nil || len(word) != 0 {
		t.Fatalf("want non-nil empty word, got %v", word)
	}
	if !reflect.DeepEqual(states, []int{0}) {
		t.Fatalf("states = %v", states)
	}
	// the AcceptingPath/IsEmpty contract depends on non-nil empty words
	if a.IsEmpty() {
		t.Error("IsEmpty true though the empty word is accepted")
	}
}

func TestRunFor(t *testing.T) {
	a := chainNFA()
	if run := a.RunFor([]string{"a", "b"}); !reflect.DeepEqual(run, []int{0, 1, 2}) {
		t.Errorf("RunFor(ab) = %v", run)
	}
	if run := a.RunFor([]string{"c", "c", "c"}); !reflect.DeepEqual(run, []int{0, 3, 4, 5}) {
		t.Errorf("RunFor(ccc) = %v", run)
	}
	if run := a.RunFor([]string{"b"}); run != nil {
		t.Errorf("RunFor(b) = %v, want nil", run)
	}
	if run := a.RunFor([]string{"a"}); run != nil {
		t.Errorf("RunFor(a) = %v, want nil (q1 not accepting)", run)
	}
}

func TestReachableCoreachable(t *testing.T) {
	a := NewNFA()
	q1, q2, q3 := a.AddState(), a.AddState(), a.AddState()
	a.AddEdge(0, "a", q1)
	a.SetAccept(q1, true)
	a.AddEdge(q2, "b", q1) // q2 unreachable but co-reachable
	a.AddEdge(q1, "c", q3) // q3 reachable but inert
	reach := a.Reachable()
	if !reach[0] || !reach[q1] || reach[q2] || !reach[q3] {
		t.Errorf("Reachable = %v", reach)
	}
	co := a.Coreachable()
	if !co[0] || !co[q1] || !co[q2] || co[q3] {
		t.Errorf("Coreachable = %v", co)
	}
}

func TestWordTo(t *testing.T) {
	a := chainNFA()
	word, states := a.WordTo(4)
	if !reflect.DeepEqual(word, []string{"c", "c"}) || !reflect.DeepEqual(states, []int{0, 3, 4}) {
		t.Errorf("WordTo(4) = %v / %v", word, states)
	}
	if word, states := a.WordTo(0); len(word) != 0 || word == nil || !reflect.DeepEqual(states, []int{0}) {
		t.Errorf("WordTo(start) = %v / %v", word, states)
	}
	orphan := a.AddState()
	if word, states := a.WordTo(orphan); word != nil || states != nil {
		t.Errorf("WordTo(orphan) = %v / %v", word, states)
	}
}

// letters builds a one-word DFA over {a,b}.
func wordDFA(word ...string) *DFA {
	n := NewNFA()
	cur := 0
	for _, sym := range word {
		next := n.AddState()
		n.AddEdge(cur, sym, next)
		cur = next
	}
	n.SetAccept(cur, true)
	return n.Determinize([]string{"a", "b"})
}

func TestDifferenceIncluded(t *testing.T) {
	ab := wordDFA("a", "b")
	// L = {ab, ba}
	n := NewNFA()
	q1, q2, q3, q4 := n.AddState(), n.AddState(), n.AddState(), n.AddState()
	n.AddEdge(0, "a", q1)
	n.AddEdge(q1, "b", q2)
	n.SetAccept(q2, true)
	n.AddEdge(0, "b", q3)
	n.AddEdge(q3, "a", q4)
	n.SetAccept(q4, true)
	both := n.Determinize([]string{"a", "b"})

	if ok, sep := ab.Included(both); !ok || sep != nil {
		t.Errorf("{ab} ⊆ {ab,ba} failed: %v %v", ok, sep)
	}
	ok, sep := both.Included(ab)
	if ok {
		t.Fatal("{ab,ba} ⊆ {ab} must fail")
	}
	if !reflect.DeepEqual(sep, []string{"b", "a"}) {
		t.Errorf("separating word = %v, want [b a]", sep)
	}
	diff := both.Difference(ab)
	if diff.IsEmpty() {
		t.Error("difference must be non-empty")
	}
	if !diff.Accepts([]string{"b", "a"}) || diff.Accepts([]string{"a", "b"}) {
		t.Error("difference accepts the wrong words")
	}
}

func TestDFAAcceptingRun(t *testing.T) {
	d := wordDFA("a", "b")
	word, states := d.AcceptingRun()
	if !reflect.DeepEqual(word, []string{"a", "b"}) {
		t.Fatalf("word = %v", word)
	}
	if len(states) != 3 || states[0] != d.Start {
		t.Fatalf("states = %v", states)
	}
	// replay the run through Trans
	for i, sym := range word {
		ai := -1
		for j, s := range d.Alphabet {
			if s == sym {
				ai = j
			}
		}
		if d.Trans[states[i]][ai] != states[i+1] {
			t.Fatalf("run does not replay at step %d", i)
		}
	}
	if !d.Accept[states[len(states)-1]] {
		t.Error("run does not end accepting")
	}
}
