package autom

import "sort"

// Compiled is a DFA lowered to dense tables: a state-major []int32
// transition table indexed by (state, symbol index) and the accepting set
// as a []uint64 bitset. Every operation here — stepping, products,
// reachability, witness extraction — indexes arrays; no maps, no string
// keys. It is the representation the hot paths (SUSC014 inclusion checks,
// valid.ModelCheck intersections, compiled policy rows) run on.
type Compiled struct {
	// Alphabet is the sorted symbol set shared with the source DFA.
	Alphabet []string
	// Trans is the state-major transition table: Trans[s*K+a] is the
	// successor of state s on Alphabet[a].
	Trans []int32
	// Accept is the accepting-state bitset (word i bit j = state i*64+j).
	Accept []uint64
	// Start is the initial state.
	Start int32
	// N and K are the state and symbol counts.
	N, K int32
}

// Compile lowers a DFA to its dense-table form.
func Compile(d *DFA) *Compiled {
	n, k := len(d.Trans), len(d.Alphabet)
	c := &Compiled{
		Alphabet: d.Alphabet,
		Trans:    make([]int32, n*k),
		Accept:   make([]uint64, (n+63)/64),
		Start:    int32(d.Start),
		N:        int32(n),
		K:        int32(k),
	}
	for s := 0; s < n; s++ {
		row := d.Trans[s]
		for a := 0; a < k; a++ {
			c.Trans[s*k+a] = int32(row[a])
		}
		if d.Accept[s] {
			c.Accept[s>>6] |= 1 << (uint(s) & 63)
		}
	}
	return c
}

// DFA lifts the compiled form back to the map-free but slice-of-slice DFA
// representation (for interop with code still on *DFA).
func (c *Compiled) DFA() *DFA {
	d := &DFA{
		Alphabet: c.Alphabet,
		Trans:    make([][]int, c.N),
		Accept:   make([]bool, c.N),
		Start:    int(c.Start),
	}
	for s := int32(0); s < c.N; s++ {
		row := make([]int, c.K)
		for a := int32(0); a < c.K; a++ {
			row[a] = int(c.Trans[s*c.K+a])
		}
		d.Trans[s] = row
		d.Accept[s] = c.Accepting(s)
	}
	return d
}

// NumStates returns the number of states.
func (c *Compiled) NumStates() int { return int(c.N) }

// SymIndex returns the index of sym in the alphabet, or -1.
func (c *Compiled) SymIndex(sym string) int {
	i := sort.SearchStrings(c.Alphabet, sym)
	if i < len(c.Alphabet) && c.Alphabet[i] == sym {
		return i
	}
	return -1
}

// Step returns the successor of state s on symbol index a.
func (c *Compiled) Step(s int32, a int) int32 { return c.Trans[int(s)*int(c.K)+a] }

// Accepting reports whether state s is accepting (bitset membership).
func (c *Compiled) Accepting(s int32) bool {
	return c.Accept[s>>6]&(1<<(uint(s)&63)) != 0
}

// Accepts reports whether the word is accepted. Symbols outside the
// alphabet reject, matching DFA.Accepts.
func (c *Compiled) Accepts(word []string) bool {
	s := c.Start
	for _, sym := range word {
		a := c.SymIndex(sym)
		if a < 0 {
			return false
		}
		s = c.Trans[int(s)*int(c.K)+a]
	}
	return c.Accepting(s)
}

// Complement returns the compiled automaton with the accepting set
// flipped (sharing the transition table).
func (c *Compiled) Complement() *Compiled {
	out := &Compiled{Alphabet: c.Alphabet, Trans: c.Trans, Start: c.Start, N: c.N, K: c.K}
	out.Accept = make([]uint64, len(c.Accept))
	for i, w := range c.Accept {
		out.Accept[i] = ^w
	}
	// mask the tail beyond state N-1
	if tail := uint(c.N) & 63; tail != 0 && len(out.Accept) > 0 {
		out.Accept[len(out.Accept)-1] &= (1 << tail) - 1
	}
	return out
}

// maxDensePairs bounds the n1*n2 visited array Product allocates; larger
// products fall back to a map keyed on the packed pair.
const maxDensePairs = 1 << 22

// Product returns the synchronous product with the given acceptance
// combiner. The alphabets must be equal. States are numbered in BFS
// discovery order from the start pair — the same order DFA.Product
// produces — so witnesses extracted downstream are identical.
func (c *Compiled) Product(e *Compiled, both func(a, b bool) bool) *Compiled {
	if c.K != e.K {
		panic("autom: product over different alphabets")
	}
	for i := range c.Alphabet {
		if c.Alphabet[i] != e.Alphabet[i] {
			panic("autom: product over different alphabets")
		}
	}
	k := int(c.K)
	out := &Compiled{Alphabet: c.Alphabet, K: c.K}
	total := int64(c.N) * int64(e.N)
	var denseIdx []int32 // pair -> product state + 1, 0 = unseen
	var mapIdx map[uint64]int32
	if total > 0 && total <= maxDensePairs {
		denseIdx = make([]int32, total)
	} else {
		mapIdx = make(map[uint64]int32, 64)
	}
	lookup := func(pk uint64) (int32, bool) {
		if denseIdx != nil {
			v := denseIdx[pk]
			return v - 1, v != 0
		}
		v, ok := mapIdx[pk]
		return v, ok
	}
	store := func(pk uint64, i int32) {
		if denseIdx != nil {
			denseIdx[pk] = i + 1
		} else {
			mapIdx[pk] = i
		}
	}
	type pair struct{ a, b int32 }
	var pairs []pair
	add := func(a, b int32) int32 {
		pk := uint64(a)*uint64(e.N) + uint64(b)
		if i, ok := lookup(pk); ok {
			return i
		}
		i := int32(len(pairs))
		store(pk, i)
		pairs = append(pairs, pair{a, b})
		if both(c.Accepting(a), e.Accepting(b)) {
			for int(i)>>6 >= len(out.Accept) {
				out.Accept = append(out.Accept, 0)
			}
			out.Accept[i>>6] |= 1 << (uint(i) & 63)
		}
		return i
	}
	add(c.Start, e.Start)
	for i := 0; i < len(pairs); i++ {
		p := pairs[i]
		for a := 0; a < k; a++ {
			out.Trans = append(out.Trans, add(c.Trans[int(p.a)*k+a], e.Trans[int(p.b)*k+a]))
		}
	}
	out.N = int32(len(pairs))
	for int(out.N+63)>>6 > len(out.Accept) {
		out.Accept = append(out.Accept, 0)
	}
	return out
}

// Intersect returns the compiled product for L(c) ∩ L(e).
func (c *Compiled) Intersect(e *Compiled) *Compiled {
	return c.Product(e, func(a, b bool) bool { return a && b })
}

// Difference returns the compiled product for L(c) ∖ L(e).
func (c *Compiled) Difference(e *Compiled) *Compiled {
	return c.Intersect(e.Complement())
}

// Reachable returns the bitset of states reachable from the start state.
func (c *Compiled) Reachable() []uint64 {
	seen := make([]uint64, (int(c.N)+63)/64)
	if c.N == 0 {
		return seen
	}
	stack := make([]int32, 0, 16)
	seen[c.Start>>6] |= 1 << (uint(c.Start) & 63)
	stack = append(stack, c.Start)
	k := int(c.K)
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		row := c.Trans[int(s)*k : int(s)*k+k]
		for _, t := range row {
			if seen[t>>6]&(1<<(uint(t)&63)) == 0 {
				seen[t>>6] |= 1 << (uint(t) & 63)
				stack = append(stack, t)
			}
		}
	}
	return seen
}

// Coreachable returns the bitset of states from which some accepting
// state is reachable, computed over CSR preimage lists.
func (c *Compiled) Coreachable() []uint64 {
	n, k := int(c.N), int(c.K)
	out := make([]uint64, (n+63)/64)
	if n == 0 {
		return out
	}
	// preimage CSR over all symbols at once
	off := make([]int32, n+1)
	for _, t := range c.Trans {
		off[t+1]++
	}
	for t := 0; t < n; t++ {
		off[t+1] += off[t]
	}
	lst := make([]int32, len(c.Trans))
	fill := append([]int32(nil), off...)
	for s := 0; s < n; s++ {
		for a := 0; a < k; a++ {
			t := c.Trans[s*k+a]
			lst[fill[t]] = int32(s)
			fill[t]++
		}
	}
	var stack []int32
	for s := 0; s < n; s++ {
		if c.Accepting(int32(s)) {
			out[s>>6] |= 1 << (uint(s) & 63)
			stack = append(stack, int32(s))
		}
	}
	for len(stack) > 0 {
		t := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for j := off[t]; j < off[t+1]; j++ {
			s := lst[j]
			if out[s>>6]&(1<<(uint(s)&63)) == 0 {
				out[s>>6] |= 1 << (uint(s) & 63)
				stack = append(stack, s)
			}
		}
	}
	return out
}

// IsEmpty reports whether the accepted language is empty (no accepting
// state is reachable).
func (c *Compiled) IsEmpty() bool {
	reach := c.Reachable()
	for i, w := range reach {
		if i < len(c.Accept) && w&c.Accept[i] != 0 {
			return false
		}
	}
	return true
}

// AcceptingPath returns a BFS-shortest accepted word, or nil when the
// language is empty; ties break in alphabet order, exactly as
// DFA.AcceptingRun, so witnesses agree between the representations.
func (c *Compiled) AcceptingPath() []string {
	word, _ := c.AcceptingRun()
	return word
}

// AcceptingRun returns a shortest accepted word with its state run, or
// (nil, nil) when the language is empty.
func (c *Compiled) AcceptingRun() (word []string, states []int) {
	n, k := int(c.N), int(c.K)
	if n == 0 {
		return nil, nil
	}
	parent := make([]int32, n) // BFS parent state
	psym := make([]int32, n)   // symbol index taken into the state
	seen := make([]uint64, (n+63)/64)
	queue := make([]int32, 0, 16)
	seen[c.Start>>6] |= 1 << (uint(c.Start) & 63)
	parent[c.Start] = -1
	queue = append(queue, c.Start)
	goal := int32(-1)
	for qi := 0; qi < len(queue) && goal < 0; qi++ {
		s := queue[qi]
		if c.Accepting(s) {
			goal = s
			break
		}
		row := c.Trans[int(s)*k : int(s)*k+k]
		for a, t := range row {
			if seen[t>>6]&(1<<(uint(t)&63)) == 0 {
				seen[t>>6] |= 1 << (uint(t) & 63)
				parent[t] = s
				psym[t] = int32(a)
				queue = append(queue, t)
			}
		}
	}
	if goal < 0 {
		return nil, nil
	}
	word = []string{} // non-nil even for the empty word: nil means "empty language"
	for s := goal; s >= 0; s = parent[s] {
		states = append(states, int(s))
		if parent[s] >= 0 {
			word = append(word, c.Alphabet[psym[s]])
		}
	}
	reverseStrings(word)
	reverseInts(states)
	return word, states
}

// Included decides language inclusion L(c) ⊆ L(e); when inclusion fails
// the second result is a BFS-shortest separating word.
func (c *Compiled) Included(e *Compiled) (bool, []string) {
	sep := c.Difference(e).AcceptingPath()
	return sep == nil, sep
}
