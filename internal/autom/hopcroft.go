package autom

// Hopcroft's DFA minimisation: O(n·k·log n) partition refinement over
// preimage lists. This replaced the Moore-style refinement (kept unexported
// in dfa.go as minimizeMoore, the differential-fuzz oracle): Moore rebuilds
// a string signature per state per round, while Hopcroft only ever touches
// the preimage of the splitter block, over dense int32 arrays.

// Minimize returns the minimal DFA equivalent to d, restricted to
// reachable states. The result is canonically numbered by a BFS from the
// start state in alphabet order, so equal inputs give identical outputs.
func (d *DFA) Minimize() *DFA {
	if len(d.Trans) == 0 {
		return &DFA{Alphabet: d.Alphabet}
	}
	k := len(d.Alphabet)

	// Restrict to reachable states, renumbered densely 0..m-1 in BFS order
	// (so dense state 0 is the start).
	dense := make([]int32, len(d.Trans)) // original -> dense, -1 if unreachable
	for i := range dense {
		dense[i] = -1
	}
	orig := make([]int32, 0, len(d.Trans)) // dense -> original
	dense[d.Start] = 0
	orig = append(orig, int32(d.Start))
	for i := 0; i < len(orig); i++ {
		for _, t := range d.Trans[orig[i]] {
			if dense[t] < 0 {
				dense[t] = int32(len(orig))
				orig = append(orig, int32(t))
			}
		}
	}
	m := len(orig)

	// Dense transition table and per-symbol preimage lists in CSR layout:
	// pre[a][preOff[a][t]:preOff[a][t+1]] holds the states s with s --a--> t.
	trans := make([]int32, m*k)
	for s := 0; s < m; s++ {
		row := d.Trans[orig[s]]
		for a := 0; a < k; a++ {
			trans[s*k+a] = dense[row[a]]
		}
	}
	pre := make([][]int32, k)
	preOff := make([][]int32, k)
	for a := 0; a < k; a++ {
		off := make([]int32, m+1)
		for s := 0; s < m; s++ {
			off[trans[s*k+a]+1]++
		}
		for t := 0; t < m; t++ {
			off[t+1] += off[t]
		}
		lst := make([]int32, m)
		fill := append([]int32(nil), off...)
		for s := 0; s < m; s++ {
			t := trans[s*k+a]
			lst[fill[t]] = int32(s)
			fill[t]++
		}
		pre[a], preOff[a] = lst, off
	}

	// Partition: elems holds the states ordered by block, pos[s] the index
	// of s in elems, blk[s] its block; block b is elems[bStart[b]:bEnd[b]].
	elems := make([]int32, m)
	pos := make([]int32, m)
	blk := make([]int32, m)
	bStart := make([]int32, 1, m)
	bEnd := make([]int32, 1, m)

	na := 0
	for s := 0; s < m; s++ {
		if d.Accept[orig[s]] {
			na++
		}
	}
	split := na > 0 && na < m
	ia, ir := 0, 0
	if split {
		ir = na
	}
	for s := 0; s < m; s++ {
		at := ir
		if split && d.Accept[orig[s]] {
			at = ia
			ia++
			blk[s] = 0
		} else {
			ir++
			if split {
				blk[s] = 1
			}
		}
		elems[at] = int32(s)
		pos[s] = int32(at)
	}
	if split {
		bStart = append(bStart[:0], 0, int32(na))
		bEnd = append(bEnd[:0], int32(na), int32(m))
	} else {
		bStart[0], bEnd[0] = 0, int32(m)
	}

	// Worklist of (block, symbol) splitters. inW[b*k+a] tracks membership
	// so a pair is queued at most once until popped.
	type splitter struct{ b, sym int32 }
	var work []splitter
	inW := make([]bool, m*k)
	push := func(b, a int32) {
		if !inW[int(b)*k+int(a)] {
			inW[int(b)*k+int(a)] = true
			work = append(work, splitter{b, a})
		}
	}
	if split {
		// Seed with the smaller initial block on every symbol (the
		// smaller-half rule that gives the log n bound).
		seed := int32(0)
		if na > m-na {
			seed = 1
		}
		for a := 0; a < k; a++ {
			push(seed, int32(a))
		}
	}

	marked := make([]int32, 0, m)  // preimage of the current splitter
	touched := make([]int32, 0, m) // blocks holding marked states
	markCnt := make([]int32, m)    // per-block count of marked states
	front := make([]int32, m)      // per-block frontier of moved marked states
	for len(work) > 0 {
		sp := work[len(work)-1]
		work = work[:len(work)-1]
		inW[int(sp.b)*k+int(sp.sym)] = false
		a := sp.sym
		// Snapshot the preimage first: the swaps below reorder elems, and
		// sp.b itself may be among the touched blocks. Each state appears
		// at most once (the transition function is total and single-valued).
		marked = marked[:0]
		touched = touched[:0]
		for i := bStart[sp.b]; i < bEnd[sp.b]; i++ {
			t := elems[i]
			for j := preOff[a][t]; j < preOff[a][t+1]; j++ {
				marked = append(marked, pre[a][j])
			}
		}
		// Swap each marked state into the marked prefix of its block.
		for _, s := range marked {
			b := blk[s]
			if markCnt[b] == 0 {
				touched = append(touched, b)
				front[b] = bStart[b]
			}
			markCnt[b]++
			p, f := pos[s], front[b]
			if p != f {
				o := elems[f]
				elems[f], elems[p] = s, o
				pos[s], pos[o] = f, p
			}
			front[b]++
		}
		// Split every touched block whose preimage part is proper.
		for _, b := range touched {
			cnt := markCnt[b]
			markCnt[b] = 0
			if cnt == bEnd[b]-bStart[b] {
				continue
			}
			nb := int32(len(bStart))
			bStart = append(bStart, bStart[b])
			bEnd = append(bEnd, bStart[b]+cnt)
			bStart[b] += cnt
			for i := bStart[nb]; i < bEnd[nb]; i++ {
				blk[elems[i]] = nb
			}
			for c := int32(0); c < int32(k); c++ {
				if inW[int(b)*k+int(c)] {
					push(nb, c)
				} else if bEnd[nb]-bStart[nb] <= bEnd[b]-bStart[b] {
					push(nb, c)
				} else {
					push(b, c)
				}
			}
		}
	}

	// Quotient, canonically numbered by BFS from the start block.
	qid := make([]int32, len(bStart))
	for i := range qid {
		qid[i] = -1
	}
	order := make([]int32, 0, len(bStart))
	qid[blk[0]] = 0
	order = append(order, blk[0])
	for i := 0; i < len(order); i++ {
		rep := elems[bStart[order[i]]]
		for a := 0; a < k; a++ {
			tb := blk[trans[int(rep)*k+a]]
			if qid[tb] < 0 {
				qid[tb] = int32(len(order))
				order = append(order, tb)
			}
		}
	}
	out := &DFA{
		Alphabet: d.Alphabet,
		Trans:    make([][]int, len(order)),
		Accept:   make([]bool, len(order)),
		Start:    0,
	}
	for qi, b := range order {
		rep := elems[bStart[b]]
		row := make([]int, k)
		for a := 0; a < k; a++ {
			row[a] = int(qid[blk[trans[int(rep)*k+a]]])
		}
		out.Trans[qi] = row
		out.Accept[qi] = d.Accept[orig[rep]]
	}
	return out
}
