// Package autom is a small finite-automata toolkit over string alphabets:
// NFAs, determinisation, completion, products, complement, emptiness and
// minimisation. It is the model-checking substrate used to decide the
// safety properties the paper reduces everything to — validity of histories
// against usage automata (internal/valid) and compliance via the product
// automaton (internal/compliance). It plays the role of the LocUsT tool
// referenced by the paper.
package autom

import (
	"fmt"
	"sort"
	"strings"
)

// NFA is a nondeterministic finite automaton over a string alphabet.
// States are dense integers; state 0 exists once a state has been added.
// ε-transitions are not supported (none of the constructions here need
// them).
type NFA struct {
	n      int
	start  int
	accept map[int]bool
	// edges[from][symbol] = set of targets
	edges []map[string][]int
}

// NewNFA returns an empty automaton with a single non-accepting start
// state 0.
func NewNFA() *NFA {
	a := &NFA{accept: map[int]bool{}}
	a.AddState()
	return a
}

// AddState adds a fresh state and returns its index.
func (a *NFA) AddState() int {
	a.edges = append(a.edges, map[string][]int{})
	a.n++
	return a.n - 1
}

// NumStates returns the number of states.
func (a *NFA) NumStates() int { return a.n }

// Start returns the start state.
func (a *NFA) Start() int { return a.start }

// SetStart sets the start state.
func (a *NFA) SetStart(s int) { a.start = s }

// SetAccept marks s as accepting (or not).
func (a *NFA) SetAccept(s int, accepting bool) {
	if accepting {
		a.accept[s] = true
	} else {
		delete(a.accept, s)
	}
}

// Accepting reports whether s is an accepting state.
func (a *NFA) Accepting(s int) bool { return a.accept[s] }

// AddEdge adds a transition from→to on symbol.
func (a *NFA) AddEdge(from int, symbol string, to int) {
	for _, t := range a.edges[from][symbol] {
		if t == to {
			return
		}
	}
	a.edges[from][symbol] = append(a.edges[from][symbol], to)
}

// Succ returns the successors of s on symbol.
func (a *NFA) Succ(s int, symbol string) []int { return a.edges[s][symbol] }

// Alphabet returns the sorted set of symbols with at least one edge.
func (a *NFA) Alphabet() []string {
	set := map[string]bool{}
	for _, m := range a.edges {
		for sym := range m {
			set[sym] = true
		}
	}
	out := make([]string, 0, len(set))
	for sym := range set {
		out = append(out, sym)
	}
	sort.Strings(out)
	return out
}

// Accepts reports whether the automaton accepts the given word.
func (a *NFA) Accepts(word []string) bool {
	cur := map[int]bool{a.start: true}
	for _, sym := range word {
		next := map[int]bool{}
		for s := range cur {
			for _, t := range a.edges[s][sym] {
				next[t] = true
			}
		}
		if len(next) == 0 {
			return false
		}
		cur = next
	}
	for s := range cur {
		if a.accept[s] {
			return true
		}
	}
	return false
}

// IsEmpty reports whether the accepted language is empty, i.e. no accepting
// state is reachable from the start state.
func (a *NFA) IsEmpty() bool {
	seen := make([]bool, a.n)
	stack := []int{a.start}
	seen[a.start] = true
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if a.accept[s] {
			return false
		}
		for _, m := range a.edges[s] {
			for _, t := range m {
				if !seen[t] {
					seen[t] = true
					stack = append(stack, t)
				}
			}
		}
	}
	return true
}

// AcceptingPath returns a shortest word leading from the start state to an
// accepting state, or nil when the language is empty. It is the
// counterexample extractor of the model checkers built on this package;
// AcceptingRun additionally reconstructs the state sequence.
func (a *NFA) AcceptingPath() []string {
	word, _ := a.AcceptingRun()
	return word
}

func (a *NFA) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "NFA(%d states, start %d)\n", a.n, a.start)
	for s := 0; s < a.n; s++ {
		mark := " "
		if a.accept[s] {
			mark = "*"
		}
		fmt.Fprintf(&b, "%s q%d:", mark, s)
		syms := make([]string, 0, len(a.edges[s]))
		for sym := range a.edges[s] {
			syms = append(syms, sym)
		}
		sort.Strings(syms)
		for _, sym := range syms {
			fmt.Fprintf(&b, " %s->%v", sym, a.edges[s][sym])
		}
		b.WriteString("\n")
	}
	return b.String()
}
