package autom

import (
	"sort"
	"strconv"
	"strings"
)

// DFA is a deterministic, complete finite automaton over an explicit
// alphabet. Missing transitions are directed to an implicit rejecting sink
// by Determinize, so every DFA produced here is total over its alphabet.
type DFA struct {
	// Alphabet is the sorted symbol set.
	Alphabet []string
	// Trans[s][i] is the successor of state s on Alphabet[i].
	Trans [][]int
	// Accept[s] reports whether s is accepting.
	Accept []bool
	// Start is the initial state.
	Start int
}

// NumStates returns the number of states.
func (d *DFA) NumStates() int { return len(d.Trans) }

// symIndex returns the index of sym in the alphabet, or -1.
func (d *DFA) symIndex(sym string) int {
	i := sort.SearchStrings(d.Alphabet, sym)
	if i < len(d.Alphabet) && d.Alphabet[i] == sym {
		return i
	}
	return -1
}

// Accepts reports whether d accepts the word. Symbols outside the alphabet
// make the word rejected.
func (d *DFA) Accepts(word []string) bool {
	s := d.Start
	for _, sym := range word {
		i := d.symIndex(sym)
		if i < 0 {
			return false
		}
		s = d.Trans[s][i]
	}
	return d.Accept[s]
}

// Determinize converts the NFA to an equivalent complete DFA via the subset
// construction, over the given alphabet (defaulting to the NFA's own
// alphabet when alphabet is nil).
func (a *NFA) Determinize(alphabet []string) *DFA {
	if alphabet == nil {
		alphabet = a.Alphabet()
	} else {
		alphabet = append([]string(nil), alphabet...)
		sort.Strings(alphabet)
	}
	d := &DFA{Alphabet: alphabet}
	idx := subsetIndex{buckets: map[uint64][]int32{}}
	add := func(set []int32) int {
		i, fresh := idx.add(set)
		if fresh {
			acc := false
			for _, s := range set {
				if a.accept[int(s)] {
					acc = true
					break
				}
			}
			d.Accept = append(d.Accept, acc)
			d.Trans = append(d.Trans, nil)
		}
		return i
	}
	d.Start = add([]int32{int32(a.start)})
	// Target sets are collected through an epoch-stamped mark array and a
	// reusable buffer — no per-symbol map or string key allocations.
	mark := make([]int, a.n)
	epoch := 0
	var target []int32
	for i := 0; i < len(idx.sets); i++ {
		row := make([]int, len(alphabet))
		for ai, sym := range alphabet {
			epoch++
			target = target[:0]
			for _, s := range idx.sets[i] {
				for _, t := range a.edges[s][sym] {
					if mark[t] != epoch {
						mark[t] = epoch
						target = append(target, int32(t))
					}
				}
			}
			sortInt32s(target)
			row[ai] = add(target) // empty set becomes the rejecting sink
		}
		d.Trans[i] = row
	}
	return d
}

// subsetIndex maps canonical (sorted) state sets to dense DFA state ids.
// Sets are hashed with FNV-1a over their int32 elements and compared
// structurally on collision, so interning a set allocates nothing unless
// the set is new.
type subsetIndex struct {
	buckets map[uint64][]int32 // hash -> candidate set ids
	sets    [][]int32
}

// fnvInt32s hashes a sorted int32 slice with FNV-1a.
func fnvInt32s(set []int32) uint64 {
	h := uint64(14695981039346656037)
	for _, s := range set {
		u := uint32(s)
		h = (h ^ uint64(u&0xff)) * 1099511628211
		h = (h ^ uint64((u>>8)&0xff)) * 1099511628211
		h = (h ^ uint64((u>>16)&0xff)) * 1099511628211
		h = (h ^ uint64(u>>24)) * 1099511628211
	}
	return h
}

// add interns the sorted set, returning its id and whether it was new.
// The set is copied when new; callers may reuse the backing slice.
func (x *subsetIndex) add(set []int32) (int, bool) {
	h := fnvInt32s(set)
	for _, id := range x.buckets[h] {
		if int32Equal(x.sets[id], set) {
			return int(id), false
		}
	}
	id := int32(len(x.sets))
	x.sets = append(x.sets, append([]int32(nil), set...))
	x.buckets[h] = append(x.buckets[h], id)
	return int(id), true
}

func int32Equal(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sortInt32s(s []int32) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}

// Complement returns a DFA accepting exactly the words over the same
// alphabet that d rejects.
func (d *DFA) Complement() *DFA {
	out := &DFA{Alphabet: d.Alphabet, Start: d.Start, Trans: d.Trans}
	out.Accept = make([]bool, len(d.Accept))
	for i, a := range d.Accept {
		out.Accept[i] = !a
	}
	return out
}

// Product returns the synchronous product of d and e with the given
// acceptance combiner (e.g. intersection: both accepting). The alphabets
// must be equal.
func (d *DFA) Product(e *DFA, acceptBoth func(a, b bool) bool) *DFA {
	if len(d.Alphabet) != len(e.Alphabet) {
		panic("autom: product over different alphabets")
	}
	for i := range d.Alphabet {
		if d.Alphabet[i] != e.Alphabet[i] {
			panic("autom: product over different alphabets")
		}
	}
	// Pairs are keyed by a packed uint64 instead of a struct key, halving
	// the hashing work on this hot constructor.
	type pair struct{ a, b int }
	index := map[uint64]int{}
	var pairs []pair
	out := &DFA{Alphabet: d.Alphabet}
	add := func(p pair) int {
		k := uint64(uint32(p.a))<<32 | uint64(uint32(p.b))
		if i, ok := index[k]; ok {
			return i
		}
		i := len(pairs)
		index[k] = i
		pairs = append(pairs, p)
		out.Accept = append(out.Accept, acceptBoth(d.Accept[p.a], e.Accept[p.b]))
		out.Trans = append(out.Trans, nil)
		return i
	}
	out.Start = add(pair{d.Start, e.Start})
	for i := 0; i < len(pairs); i++ {
		p := pairs[i]
		row := make([]int, len(out.Alphabet))
		for ai := range out.Alphabet {
			row[ai] = add(pair{d.Trans[p.a][ai], e.Trans[p.b][ai]})
		}
		out.Trans[i] = row
	}
	return out
}

// Intersect returns a DFA for L(d) ∩ L(e).
func (d *DFA) Intersect(e *DFA) *DFA {
	return d.Product(e, func(a, b bool) bool { return a && b })
}

// IsEmpty reports whether the accepted language is empty.
func (d *DFA) IsEmpty() bool { return d.AcceptingPath() == nil }

// AcceptingPath returns a shortest accepted word, or nil when the language
// is empty. AcceptingRun additionally reconstructs the state sequence.
func (d *DFA) AcceptingPath() []string {
	word, _ := d.AcceptingRun()
	return word
}

// minimizeMoore returns the minimal DFA equivalent to d via Moore's
// partition refinement (string-built signatures, quadratic rounds). It is
// kept unexported as the differential oracle for the Hopcroft
// implementation in hopcroft.go, which replaced it as Minimize.
func (d *DFA) minimizeMoore() *DFA {
	// restrict to reachable states
	reach := make([]bool, len(d.Trans))
	stack := []int{d.Start}
	reach[d.Start] = true
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, t := range d.Trans[s] {
			if !reach[t] {
				reach[t] = true
				stack = append(stack, t)
			}
		}
	}
	// initial partition: accepting vs not (reachable only)
	class := make([]int, len(d.Trans))
	for s := range class {
		class[s] = -1
	}
	for s := range d.Trans {
		if !reach[s] {
			continue
		}
		if d.Accept[s] {
			class[s] = 1
		} else {
			class[s] = 0
		}
	}
	for {
		// signature: (class, classes of successors)
		sig := map[string][]int{}
		var order []string
		for s := range d.Trans {
			if !reach[s] {
				continue
			}
			var b strings.Builder
			b.WriteString(strconv.Itoa(class[s]))
			for _, t := range d.Trans[s] {
				b.WriteByte('|')
				b.WriteString(strconv.Itoa(class[t]))
			}
			k := b.String()
			if _, ok := sig[k]; !ok {
				order = append(order, k)
			}
			sig[k] = append(sig[k], s)
		}
		changed := false
		newClass := make([]int, len(d.Trans))
		copy(newClass, class)
		for i, k := range order {
			for _, s := range sig[k] {
				if newClass[s] != i {
					newClass[s] = i
					changed = true
				}
			}
		}
		class = newClass
		if !changed {
			break
		}
	}
	// build quotient
	numClasses := 0
	for s := range d.Trans {
		if reach[s] && class[s]+1 > numClasses {
			numClasses = class[s] + 1
		}
	}
	out := &DFA{
		Alphabet: d.Alphabet,
		Trans:    make([][]int, numClasses),
		Accept:   make([]bool, numClasses),
		Start:    class[d.Start],
	}
	for s := range d.Trans {
		if !reach[s] {
			continue
		}
		c := class[s]
		if out.Trans[c] == nil {
			row := make([]int, len(d.Alphabet))
			for ai, t := range d.Trans[s] {
				row[ai] = class[t]
			}
			out.Trans[c] = row
			out.Accept[c] = d.Accept[s]
		}
	}
	return out
}

// Equivalent reports whether d and e accept the same language (over equal
// alphabets), by checking emptiness of the symmetric difference.
func (d *DFA) Equivalent(e *DFA) bool {
	diff1 := d.Intersect(e.Complement())
	diff2 := e.Intersect(d.Complement())
	return diff1.IsEmpty() && diff2.IsEmpty()
}
