package autom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCompiledAcceptsBasics(t *testing.T) {
	d := buildEvenAs().Determinize([]string{"a", "b"})
	c := Compile(d)
	cases := []struct {
		w    []string
		want bool
	}{
		{nil, true},
		{[]string{"a"}, false},
		{[]string{"a", "a"}, true},
		{[]string{"b", "a", "b", "a"}, true},
		{[]string{"c"}, false}, // unknown symbol
	}
	for _, cse := range cases {
		if got := c.Accepts(cse.w); got != cse.want {
			t.Errorf("Accepts(%v) = %v, want %v", cse.w, got, cse.want)
		}
	}
	back := c.DFA()
	if !back.Equivalent(d) {
		t.Error("DFA() round-trip not equivalent")
	}
}

// TestPropCompiledAcceptsMatchesDFA is the compiled-layer contract: on
// random automata and random words, Compiled.Accepts agrees with
// DFA.Accepts symbol for symbol.
func TestPropCompiledAcceptsMatchesDFA(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomNFA(r).Determinize([]string{"a", "b", "c"})
		c := Compile(d)
		for i := 0; i < 40; i++ {
			w := randomWord(r)
			if c.Accepts(w) != d.Accepts(w) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestPropCompiledOpsMatchDFA checks that the array-based product,
// complement, emptiness and witness extraction agree with the map-based
// DFA constructions — including the exact BFS-shortest witness, which the
// lint analyzers surface to users.
func TestPropCompiledOpsMatchDFA(t *testing.T) {
	alpha := []string{"a", "b", "c"}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d1 := randomNFA(r).Determinize(alpha)
		d2 := randomNFA(r).Determinize(alpha)
		c1, c2 := Compile(d1), Compile(d2)

		dw := d1.Intersect(d2).AcceptingPath()
		cw := c1.Intersect(c2).AcceptingPath()
		if !wordsEqual(dw, cw) {
			return false
		}
		dInc, dSep := d1.Included(d2)
		cInc, cSep := c1.Included(c2)
		if dInc != cInc || !wordsEqual(dSep, cSep) {
			return false
		}
		if d1.IsEmpty() != c1.IsEmpty() {
			return false
		}
		if !c1.Complement().DFA().Equivalent(d1.Complement()) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestCompiledReachableCoreachable(t *testing.T) {
	// 0 -a-> 1(acc) ; 2 unreachable; 3 reachable dead sink.
	d := &DFA{
		Alphabet: []string{"a"},
		Trans:    [][]int{{1}, {3}, {2}, {3}},
		Accept:   []bool{false, true, false, false},
		Start:    0,
	}
	c := Compile(d)
	reach := c.Reachable()
	co := c.Coreachable()
	bit := func(bs []uint64, s int) bool { return bs[s>>6]&(1<<(uint(s)&63)) != 0 }
	wantReach := []bool{true, true, false, true}
	wantCo := []bool{true, true, false, false}
	for s := 0; s < 4; s++ {
		if bit(reach, s) != wantReach[s] {
			t.Errorf("Reachable(%d) = %v, want %v", s, bit(reach, s), wantReach[s])
		}
		if bit(co, s) != wantCo[s] {
			t.Errorf("Coreachable(%d) = %v, want %v", s, bit(co, s), wantCo[s])
		}
	}
}

// FuzzMinimizeHopcroftMoore differentially fuzzes the Hopcroft
// minimisation against the retained Moore implementation: same minimal
// state count, same language.
func FuzzMinimizeHopcroftMoore(f *testing.F) {
	f.Add([]byte{2, 2, 2, 0, 0, 1, 1, 1, 1})
	f.Add([]byte{3, 4, 3, 0, 0, 1, 1, 1, 2, 2, 2, 0, 1, 1, 1, 0, 2, 1})
	f.Add([]byte{5, 16, 9, 0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 0, 4, 4, 1, 0})
	f.Add([]byte{4, 0, 6, 1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		n, _ := decodeNFA(data)
		d := n.Determinize(fuzzAlphabet)
		hop := d.Minimize()
		moore := d.minimizeMoore()
		if hop.NumStates() != moore.NumStates() {
			t.Fatalf("Hopcroft has %d states, Moore %d\n%s", hop.NumStates(), moore.NumStates(), n)
		}
		if !hop.Equivalent(d) {
			t.Fatalf("Hopcroft result not equivalent to input")
		}
		if !hop.Equivalent(moore) {
			t.Fatalf("Hopcroft and Moore disagree on the language")
		}
	})
}

func wordsEqual(a, b []string) bool {
	if (a == nil) != (b == nil) || len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
