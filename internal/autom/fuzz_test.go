package autom

import (
	"bytes"
	"testing"
)

// fuzzAlphabet is the fixed alphabet fuzzed automata range over. Three
// symbols are enough to exercise branching without exploding the bounded
// brute-force oracles below.
var fuzzAlphabet = []string{"a", "b", "c"}

// decodeNFA deterministically builds a small NFA from a byte stream and
// returns the remaining bytes. The layout is: one byte for the state
// count, one for the accept mask, one for the edge count, then three
// bytes (from, symbol, to) per edge. Every input decodes to a valid
// automaton, so the fuzzer explores structure rather than validity.
func decodeNFA(data []byte) (*NFA, []byte) {
	next := func() byte {
		if len(data) == 0 {
			return 0
		}
		b := data[0]
		data = data[1:]
		return b
	}
	a := NewNFA()
	n := int(next())%5 + 1
	for a.NumStates() < n {
		a.AddState()
	}
	mask := next()
	for s := 0; s < n; s++ {
		a.SetAccept(s, mask&(1<<(s%8)) != 0)
	}
	edges := int(next()) % 12
	for i := 0; i < edges; i++ {
		from := int(next()) % n
		sym := fuzzAlphabet[int(next())%len(fuzzAlphabet)]
		to := int(next()) % n
		a.AddEdge(from, sym, to)
	}
	return a, data
}

// shortestAcceptedLen returns the length of a shortest accepted word via
// level-order BFS over states, or -1 when the language is empty. It is an
// independent oracle for the BFS-minimality contract of AcceptingRun.
func shortestAcceptedLen(a *NFA) int {
	seen := make([]bool, a.NumStates())
	level := []int{a.Start()}
	seen[a.Start()] = true
	for depth := 0; len(level) > 0; depth++ {
		var next []int
		for _, s := range level {
			if a.Accepting(s) {
				return depth
			}
		}
		for _, s := range level {
			for _, sym := range fuzzAlphabet {
				for _, t := range a.Succ(s, sym) {
					if !seen[t] {
						seen[t] = true
						next = append(next, t)
					}
				}
			}
		}
		level = next
	}
	return -1
}

// FuzzWitnessMinimal checks the witness-extraction contract on random
// automata: AcceptingRun returns an accepted word whose run replays edge
// by edge and which is BFS-minimal, and the product witness (the shape
// SUSC014 language-inclusion counterexamples take) is accepted by both
// operands and minimal among common words, verified by a bounded
// brute-force oracle.
func FuzzWitnessMinimal(f *testing.F) {
	f.Add([]byte{2, 2, 2, 0, 0, 1, 1, 1, 1})
	f.Add([]byte{3, 4, 3, 0, 0, 1, 1, 1, 2, 2, 2, 0, 1, 1, 1, 0, 2, 1})
	f.Add([]byte{5, 16, 9, 0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 0, 4, 4, 1, 0})
	f.Add(bytes.Repeat([]byte{7, 255, 11, 4}, 6))
	f.Fuzz(func(t *testing.T, data []byte) {
		a, rest := decodeNFA(data)
		b, _ := decodeNFA(rest)

		for _, n := range []*NFA{a, b} {
			word, states := n.AcceptingRun()
			min := shortestAcceptedLen(n)
			if word == nil {
				if min >= 0 {
					t.Fatalf("AcceptingRun found nothing but a word of length %d is accepted\n%s", min, n)
				}
				if states != nil {
					t.Fatalf("nil word with non-nil states %v", states)
				}
				continue
			}
			if !n.Accepts(word) {
				t.Fatalf("witness %v is not accepted\n%s", word, n)
			}
			if len(word) != min {
				t.Fatalf("witness %v has length %d, BFS-shortest is %d\n%s", word, len(word), min, n)
			}
			if len(states) != len(word)+1 || states[0] != n.Start() || !n.Accepting(states[len(states)-1]) {
				t.Fatalf("run %v malformed for word %v", states, word)
			}
			for i, sym := range word {
				found := false
				for _, succ := range n.Succ(states[i], sym) {
					if succ == states[i+1] {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("run step %d (%d -%s-> %d) is not an edge\n%s", i, states[i], sym, states[i+1], n)
				}
				if replay := n.RunFor(word); replay == nil {
					t.Fatalf("RunFor rejects the accepted witness %v", word)
				}
			}
		}

		// Product witness: minimal common word of L(a) ∩ L(b), the shape
		// language-inclusion counterexamples take (with b complemented).
		da, db := a.Determinize(fuzzAlphabet), b.Determinize(fuzzAlphabet)
		common := da.Intersect(db).AcceptingPath()

		// The compiled (dense-table) layer must agree with the map-based
		// constructions on the same product — including the exact witness.
		ca, cb := Compile(da), Compile(db)
		if cw := ca.Intersect(cb).AcceptingPath(); !wordsEqual(common, cw) {
			t.Fatalf("compiled product witness %v != DFA witness %v", cw, common)
		}
		if common != nil && (!ca.Accepts(common) || !cb.Accepts(common)) {
			t.Fatalf("compiled operands reject the product witness %v", common)
		}
		dInc, dSep := da.Included(db)
		cInc, cSep := ca.Included(cb)
		if dInc != cInc || !wordsEqual(dSep, cSep) {
			t.Fatalf("compiled Included (%v, %v) != DFA Included (%v, %v)", cInc, cSep, dInc, dSep)
		}

		if common != nil {
			if !a.Accepts(common) || !b.Accepts(common) {
				t.Fatalf("product witness %v not accepted by both operands", common)
			}
			// Bounded oracle: no strictly shorter word is accepted by both.
			bound := len(common)
			if bound > 5 {
				bound = 5
			}
			var walk func(prefix []string)
			walk = func(prefix []string) {
				if len(prefix) >= bound {
					return
				}
				if a.Accepts(prefix) && b.Accepts(prefix) {
					t.Fatalf("product witness %v is not minimal: %v is shorter and common", common, prefix)
				}
				for _, sym := range fuzzAlphabet {
					walk(append(prefix, sym))
				}
			}
			walk([]string{})
		}
	})
}
