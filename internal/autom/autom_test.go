package autom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// buildEvenAs returns an NFA accepting words over {a,b} with an even number
// of a's (it is in fact deterministic).
func buildEvenAs() *NFA {
	a := NewNFA()
	odd := a.AddState()
	a.SetAccept(0, true)
	a.AddEdge(0, "a", odd)
	a.AddEdge(odd, "a", 0)
	a.AddEdge(0, "b", 0)
	a.AddEdge(odd, "b", odd)
	return a
}

// buildEndsWithAB returns a genuinely nondeterministic NFA for Σ*ab.
func buildEndsWithAB() *NFA {
	n := NewNFA()
	s1 := n.AddState()
	s2 := n.AddState()
	n.AddEdge(0, "a", 0)
	n.AddEdge(0, "b", 0)
	n.AddEdge(0, "a", s1)
	n.AddEdge(s1, "b", s2)
	n.SetAccept(s2, true)
	return n
}

func TestNFAAccepts(t *testing.T) {
	a := buildEvenAs()
	cases := []struct {
		w    []string
		want bool
	}{
		{nil, true},
		{[]string{"a"}, false},
		{[]string{"a", "a"}, true},
		{[]string{"b", "a", "b", "a"}, true},
		{[]string{"a", "b", "b"}, false},
		{[]string{"c"}, false}, // unknown symbol
	}
	for _, c := range cases {
		if got := a.Accepts(c.w); got != c.want {
			t.Errorf("Accepts(%v) = %v, want %v", c.w, got, c.want)
		}
	}
}

func TestNFAEmptiness(t *testing.T) {
	a := NewNFA()
	if !a.IsEmpty() {
		t.Error("no accepting state: language must be empty")
	}
	s := a.AddState()
	a.SetAccept(s, true)
	if !a.IsEmpty() {
		t.Error("unreachable accepting state: language must be empty")
	}
	a.AddEdge(0, "x", s)
	if a.IsEmpty() {
		t.Error("reachable accepting state: language must be non-empty")
	}
	if p := a.AcceptingPath(); len(p) != 1 || p[0] != "x" {
		t.Errorf("AcceptingPath = %v", p)
	}
}

func TestDeterminizeAgreesWithNFA(t *testing.T) {
	n := buildEndsWithAB()
	d := n.Determinize(nil)
	words := [][]string{
		nil, {"a"}, {"b"}, {"a", "b"}, {"b", "a", "b"},
		{"a", "a", "b"}, {"a", "b", "a"}, {"a", "b", "a", "b"},
	}
	for _, w := range words {
		if n.Accepts(w) != d.Accepts(w) {
			t.Errorf("NFA and DFA disagree on %v", w)
		}
	}
}

func TestComplement(t *testing.T) {
	d := buildEvenAs().Determinize([]string{"a", "b"})
	c := d.Complement()
	words := [][]string{nil, {"a"}, {"a", "a"}, {"b"}, {"a", "b", "a", "a"}}
	for _, w := range words {
		if d.Accepts(w) == c.Accepts(w) {
			t.Errorf("complement agrees with original on %v", w)
		}
	}
}

func TestIntersectAndEmptiness(t *testing.T) {
	alpha := []string{"a", "b"}
	even := buildEvenAs().Determinize(alpha)
	endsAB := buildEndsWithAB().Determinize(alpha)
	inter := even.Intersect(endsAB)
	// "aab" has 2 a's and ends in ab
	if !inter.Accepts([]string{"a", "a", "b"}) {
		t.Error("intersection should accept aab")
	}
	if inter.Accepts([]string{"a", "b"}) {
		t.Error("ab has odd #a")
	}
	// L ∩ ¬L = ∅
	if !even.Intersect(even.Complement()).IsEmpty() {
		t.Error("L∩¬L must be empty")
	}
}

func TestMinimize(t *testing.T) {
	// Build a DFA with redundant states: even #a with duplicated states.
	n := NewNFA()
	s1 := n.AddState()
	s2 := n.AddState() // duplicate of 0
	s3 := n.AddState() // duplicate of s1
	n.SetAccept(0, true)
	n.SetAccept(s2, true)
	n.AddEdge(0, "a", s1)
	n.AddEdge(s1, "a", s2)
	n.AddEdge(s2, "a", s3)
	n.AddEdge(s3, "a", 0)
	n.AddEdge(0, "b", 0)
	n.AddEdge(s1, "b", s1)
	n.AddEdge(s2, "b", s2)
	n.AddEdge(s3, "b", s3)
	d := n.Determinize([]string{"a", "b"})
	m := d.Minimize()
	if m.NumStates() >= d.NumStates() {
		t.Errorf("minimize did not shrink: %d -> %d", d.NumStates(), m.NumStates())
	}
	if !m.Equivalent(d) {
		t.Error("minimized DFA not equivalent")
	}
	if m.NumStates() != 2 {
		t.Errorf("minimal DFA for even-#a has 2 states, got %d", m.NumStates())
	}
}

func TestEquivalent(t *testing.T) {
	alpha := []string{"a", "b"}
	d1 := buildEvenAs().Determinize(alpha)
	d2 := buildEndsWithAB().Determinize(alpha)
	if d1.Equivalent(d2) {
		t.Error("different languages reported equivalent")
	}
	if !d1.Equivalent(d1.Minimize()) {
		t.Error("DFA not equivalent to its own minimization")
	}
}

// randomNFA builds a random NFA over {a,b,c} for property testing.
func randomNFA(rnd *rand.Rand) *NFA {
	n := NewNFA()
	states := 2 + rnd.Intn(5)
	for i := 1; i < states; i++ {
		n.AddState()
	}
	syms := []string{"a", "b", "c"}
	edges := 1 + rnd.Intn(3*states)
	for i := 0; i < edges; i++ {
		n.AddEdge(rnd.Intn(states), syms[rnd.Intn(3)], rnd.Intn(states))
	}
	for i := 0; i < states; i++ {
		if rnd.Intn(3) == 0 {
			n.SetAccept(i, true)
		}
	}
	return n
}

func randomWord(rnd *rand.Rand) []string {
	syms := []string{"a", "b", "c"}
	w := make([]string, rnd.Intn(8))
	for i := range w {
		w[i] = syms[rnd.Intn(3)]
	}
	return w
}

func TestPropDeterminizePreservesLanguage(t *testing.T) {
	rnd := rand.New(rand.NewSource(11))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := randomNFA(r)
		d := n.Determinize([]string{"a", "b", "c"})
		for i := 0; i < 30; i++ {
			w := randomWord(rnd)
			if n.Accepts(w) != d.Accepts(w) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPropMinimizePreservesLanguage(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := randomNFA(r)
		d := n.Determinize([]string{"a", "b", "c"})
		return d.Equivalent(d.Minimize())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPropComplementInvolution(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := randomNFA(r)
		d := n.Determinize([]string{"a", "b", "c"})
		return d.Equivalent(d.Complement().Complement())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPropEmptinessMatchesPath(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := randomNFA(r)
		p := n.AcceptingPath()
		if n.IsEmpty() {
			return p == nil
		}
		return p != nil && n.Accepts(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAcceptingPathIsShortest(t *testing.T) {
	n := NewNFA()
	s1, s2, s3 := n.AddState(), n.AddState(), n.AddState()
	// long path 0->1->2->3(accept) and short path 0->3
	n.AddEdge(0, "a", s1)
	n.AddEdge(s1, "a", s2)
	n.AddEdge(s2, "a", s3)
	n.AddEdge(0, "b", s3)
	n.SetAccept(s3, true)
	if p := n.AcceptingPath(); len(p) != 1 || p[0] != "b" {
		t.Errorf("shortest path = %v, want [b]", p)
	}
}

func TestDFAString(t *testing.T) {
	n := buildEvenAs()
	if n.String() == "" {
		t.Error("String should render something")
	}
	if got := n.Alphabet(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("alphabet = %v", got)
	}
}
