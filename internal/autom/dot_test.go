package autom

import (
	"strings"
	"testing"
)

func TestNFADOT(t *testing.T) {
	n := buildEvenAs()
	dot := n.DOT("even")
	for _, want := range []string{
		`digraph "even"`, "rankdir=LR", "doublecircle", `label="a"`, "__start -> q0",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("NFA dot missing %q:\n%s", want, dot)
		}
	}
}

func TestDFADOT(t *testing.T) {
	d := buildEvenAs().Determinize([]string{"a", "b"})
	dot := d.DOT("even")
	if !strings.Contains(dot, "digraph") || !strings.Contains(dot, "doublecircle") {
		t.Errorf("DFA dot:\n%s", dot)
	}
	// parallel edges grouped: a self loop on "b" appears once with label b
	if strings.Count(dot, "__start") != 2 { // declaration + edge
		t.Errorf("start marker wrong:\n%s", dot)
	}
}
