package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"susc/internal/hash"
)

// TestOpenRefusesLockedStore: a second Open of a path a live Store holds
// fails with the typed LockedError naming the holder, and succeeds again
// once the holder closes.
func TestOpenRefusesLockedStore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "susc.store")
	s1, err := Open(path, hash.Fingerprint())
	if err != nil {
		t.Fatal(err)
	}
	_, err = Open(path, hash.Fingerprint())
	var le *LockedError
	if !errors.As(err, &le) {
		t.Fatalf("second Open = %v, want *LockedError", err)
	}
	if le.Path != path {
		t.Errorf("LockedError.Path = %q, want %q", le.Path, path)
	}
	if want := fmt.Sprintf("pid %d", os.Getpid()); !strings.Contains(le.Holder, want) {
		t.Errorf("LockedError.Holder = %q, want it to name %q", le.Holder, want)
	}
	if !strings.Contains(le.Error(), path) {
		t.Errorf("error %q must name the store file", le.Error())
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(path, hash.Fingerprint())
	if err != nil {
		t.Fatalf("Open after Close = %v, want success", err)
	}
	s2.Close()
}

// TestCloseRemovesLockSidecar: the holder sidecar exists while the store
// is open and is gone after Close.
func TestCloseRemovesLockSidecar(t *testing.T) {
	path := filepath.Join(t.TempDir(), "susc.store")
	s, err := Open(path, hash.Fingerprint())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(holderPath(path)); err != nil {
		t.Fatalf("sidecar missing while store open: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(holderPath(path)); !os.IsNotExist(err) {
		t.Fatalf("sidecar still present after Close (err=%v)", err)
	}
}

// TestLockSurvivesFailedReplay: an Open refused for bad magic releases
// the lock, so the foreign file can immediately be probed again.
func TestLockSurvivesFailedReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "susc.store")
	if err := os.WriteFile(path, []byte("not a store at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		_, err := Open(path, hash.Fingerprint())
		if err == nil || errors.As(err, new(*LockedError)) {
			t.Fatalf("attempt %d: Open = %v, want bad-magic refusal, not a lock error", i, err)
		}
	}
}
