package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"susc/internal/hash"
)

func sumOf(s string) hash.Sum {
	h := hash.New()
	h.Str(s)
	return h.Sum()
}

func openT(t *testing.T, path string, fp hash.Sum) *Store {
	t.Helper()
	s, err := Open(path, fp)
	if err != nil {
		t.Fatalf("Open(%s): %v", path, err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.store")
	fp := hash.Fingerprint()
	s := openT(t, path, fp)
	if err := s.Put(KindCompliance, sumOf("a"), []byte("verdict-a")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(KindPlanReport, sumOf("b"), []byte("report-b")); err != nil {
		t.Fatal(err)
	}
	if v, ok := s.Get(KindCompliance, sumOf("a")); !ok || string(v) != "verdict-a" {
		t.Fatalf("Get a = %q, %v", v, ok)
	}
	if _, ok := s.Get(KindCompliance, sumOf("b")); ok {
		t.Fatal("kind must partition the key space")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: index rebuilt from the log.
	s2 := openT(t, path, fp)
	defer s2.Close()
	if v, ok := s2.Get(KindPlanReport, sumOf("b")); !ok || string(v) != "report-b" {
		t.Fatalf("after reopen Get b = %q, %v", v, ok)
	}
	st := s2.Stats()
	if st.Replayed != 2 || st.HealedBytes != 0 || st.Reset {
		t.Fatalf("reopen stats = %+v", st)
	}
}

func TestLastWriterWins(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.store")
	fp := hash.Fingerprint()
	s := openT(t, path, fp)
	k := sumOf("k")
	for i := 0; i < 3; i++ {
		if err := s.Put(KindLint, k, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if v, _ := s.Get(KindLint, k); string(v) != "v2" {
		t.Fatalf("resident = %q", v)
	}
	st := s.Stats().PerKind[KindLint]
	if st.Entries != 1 || st.Bytes != 2 {
		t.Fatalf("lint table stats = %+v", st)
	}
	s.Close()
	s2 := openT(t, path, fp)
	defer s2.Close()
	if v, _ := s2.Get(KindLint, k); string(v) != "v2" {
		t.Fatalf("after replay resident = %q", v)
	}
	if st := s2.Stats().PerKind[KindLint]; st.Entries != 1 {
		t.Fatalf("after replay entries = %d", st.Entries)
	}
}

func TestIdenticalPutSkipsIO(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.store")
	s := openT(t, path, hash.Fingerprint())
	defer s.Close()
	k := sumOf("k")
	if err := s.Put(KindCompliance, k, []byte("same")); err != nil {
		t.Fatal(err)
	}
	info1, _ := os.Stat(path)
	if err := s.Put(KindCompliance, k, []byte("same")); err != nil {
		t.Fatal(err)
	}
	info2, _ := os.Stat(path)
	if info1.Size() != info2.Size() {
		t.Fatalf("identical re-Put grew the file: %d -> %d", info1.Size(), info2.Size())
	}
}

// TestCrashSafetyEveryByteBoundary truncates the file at every byte
// boundary of the last record and verifies reopen self-heals: the earlier
// records survive intact and only the torn record is lost.
func TestCrashSafetyEveryByteBoundary(t *testing.T) {
	fp := hash.Fingerprint()
	keep := []struct {
		kind Kind
		key  hash.Sum
		val  string
	}{
		{KindCompliance, sumOf("c1"), "compliance-one"},
		{KindPlanReport, sumOf("p1"), "plan-report-one"},
	}
	lastKey, lastVal := sumOf("torn"), "the-record-a-crash-tears"

	// Build a pristine store once to learn the boundary offsets.
	proto := filepath.Join(t.TempDir(), "proto.store")
	s := openT(t, proto, fp)
	for _, r := range keep {
		if err := s.Put(r.kind, r.key, []byte(r.val)); err != nil {
			t.Fatal(err)
		}
	}
	info, _ := os.Stat(proto)
	goodEnd := info.Size()
	if err := s.Put(KindLTSSummary, lastKey, []byte(lastVal)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	full, err := os.ReadFile(proto)
	if err != nil {
		t.Fatal(err)
	}

	for cut := goodEnd; cut <= int64(len(full)); cut++ {
		cut := cut
		t.Run(fmt.Sprintf("cut@%d", cut), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "s.store")
			if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
			s := openT(t, path, fp)
			defer s.Close()
			st := s.Stats()
			for _, r := range keep {
				if v, ok := s.Peek(r.kind, r.key); !ok || string(v) != r.val {
					t.Fatalf("lost intact record %q: %q, %v", r.val, v, ok)
				}
			}
			_, tornPresent := s.Peek(KindLTSSummary, lastKey)
			if cut == int64(len(full)) {
				if !tornPresent {
					t.Fatal("complete file lost its last record")
				}
				if st.HealedBytes != 0 {
					t.Fatalf("complete file healed %d bytes", st.HealedBytes)
				}
			} else {
				if tornPresent {
					t.Fatalf("torn record at cut %d served from the index", cut)
				}
				if st.Replayed != len(keep) {
					t.Fatalf("replayed %d, want %d", st.Replayed, len(keep))
				}
				if st.HealedBytes != int64(len(full))-goodEnd-(int64(len(full))-cut) {
					t.Fatalf("healed %d bytes at cut %d", st.HealedBytes, cut)
				}
				// The heal must leave a writable store: the lost entry is
				// recomputed and persisted again.
				if err := s.Put(KindLTSSummary, lastKey, []byte(lastVal)); err != nil {
					t.Fatal(err)
				}
			}
			s.Close()
			// A healed-and-rewritten store replays clean.
			s2 := openT(t, path, fp)
			defer s2.Close()
			if v, ok := s2.Peek(KindLTSSummary, lastKey); !ok || string(v) != lastVal {
				t.Fatalf("recomputed record lost on second reopen: %q, %v", v, ok)
			}
			if st := s2.Stats(); st.HealedBytes != 0 {
				t.Fatalf("second reopen healed %d bytes", st.HealedBytes)
			}
		})
	}
}

// TestCrashSafetyCorruptTail flips each byte of the last record in turn;
// the checksum must reject it and the heal must preserve earlier records.
func TestCrashSafetyCorruptTail(t *testing.T) {
	fp := hash.Fingerprint()
	proto := filepath.Join(t.TempDir(), "proto.store")
	s := openT(t, proto, fp)
	if err := s.Put(KindCompliance, sumOf("keep"), []byte("kept-value")); err != nil {
		t.Fatal(err)
	}
	info, _ := os.Stat(proto)
	goodEnd := info.Size()
	if err := s.Put(KindPlanReport, sumOf("tail"), []byte("tail-value")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	full, err := os.ReadFile(proto)
	if err != nil {
		t.Fatal(err)
	}

	for off := goodEnd; off < int64(len(full)); off++ {
		off := off
		t.Run(fmt.Sprintf("flip@%d", off), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "s.store")
			mut := append([]byte(nil), full...)
			mut[off] ^= 0xff
			if err := os.WriteFile(path, mut, 0o644); err != nil {
				t.Fatal(err)
			}
			s := openT(t, path, fp)
			defer s.Close()
			if v, ok := s.Peek(KindCompliance, sumOf("keep")); !ok || string(v) != "kept-value" {
				t.Fatalf("lost intact record: %q, %v", v, ok)
			}
			// The flipped byte may corrupt the kind, key, length, value or
			// CRC — in every case the tail record must not be served with a
			// wrong value. (Flipping the kind byte alone keeps the CRC
			// stale, so the record is still rejected.)
			if v, ok := s.Peek(KindPlanReport, sumOf("tail")); ok && string(v) != "tail-value" {
				t.Fatalf("served corrupt value %q", v)
			}
			if s.Stats().HealedBytes == 0 {
				t.Fatal("corrupt tail not healed")
			}
		})
	}
}

func TestFingerprintMismatchResets(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.store")
	fpA := sumOf("engine-A")
	fpB := sumOf("engine-B")
	s := openT(t, path, fpA)
	if err := s.Put(KindCompliance, sumOf("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2 := openT(t, path, fpB)
	if _, ok := s2.Peek(KindCompliance, sumOf("k")); ok {
		t.Fatal("verdict from another engine served")
	}
	if !s2.Stats().Reset {
		t.Fatal("reset not reported")
	}
	if err := s2.Put(KindCompliance, sumOf("k2"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	s2.Close()

	// Reopening under B again is clean and keeps B's records.
	s3 := openT(t, path, fpB)
	defer s3.Close()
	if s3.Stats().Reset {
		t.Fatal("spurious reset")
	}
	if v, ok := s3.Peek(KindCompliance, sumOf("k2")); !ok || string(v) != "v2" {
		t.Fatalf("lost record after re-open: %q, %v", v, ok)
	}
}

func TestVersionMismatchResets(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.store")
	fp := hash.Fingerprint()
	s := openT(t, path, fp)
	if err := s.Put(KindCompliance, sumOf("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(magic)]++ // bump the stored version byte
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := openT(t, path, fp)
	defer s2.Close()
	if _, ok := s2.Peek(KindCompliance, sumOf("k")); ok {
		t.Fatal("record from another format version served")
	}
	if !s2.Stats().Reset {
		t.Fatal("reset not reported")
	}
}

func TestForeignFileRefused(t *testing.T) {
	path := filepath.Join(t.TempDir(), "notes.txt")
	if err := os.WriteFile(path, []byte("user data, definitely not a store"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, hash.Fingerprint()); err == nil {
		t.Fatal("foreign file opened (and would be truncated) as a store")
	}
}

func TestConcurrentReadersWriters(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.store")
	s := openT(t, path, hash.Fingerprint())
	const workers = 8
	const perWorker = 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				k := sumOf(fmt.Sprintf("w%d-%d", w, i))
				val := []byte(fmt.Sprintf("val-%d-%d", w, i))
				if err := s.Put(KindCompliance, k, val); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				if v, ok := s.Get(KindCompliance, k); !ok || string(v) != string(val) {
					t.Errorf("Get after Put = %q, %v", v, ok)
					return
				}
				// Read a neighbour's keys too.
				s.Get(KindCompliance, sumOf(fmt.Sprintf("w%d-%d", (w+1)%workers, i)))
			}
		}()
	}
	wg.Wait()
	s.Close()

	s2 := openT(t, path, hash.Fingerprint())
	defer s2.Close()
	for w := 0; w < workers; w++ {
		for i := 0; i < perWorker; i++ {
			k := sumOf(fmt.Sprintf("w%d-%d", w, i))
			if v, ok := s2.Peek(KindCompliance, k); !ok || string(v) != fmt.Sprintf("val-%d-%d", w, i) {
				t.Fatalf("lost w%d-%d after replay: %q, %v", w, i, v, ok)
			}
		}
	}
}

func TestOnceSingleflight(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.store")
	s := openT(t, path, hash.Fingerprint())
	defer s.Close()
	k := sumOf("cone")
	var mu sync.Mutex
	calls := 0
	release := make(chan struct{})
	const waiters = 16
	results := make(chan any, waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := s.Once(KindPlanReport, k, func() (any, error) {
				mu.Lock()
				calls++
				mu.Unlock()
				<-release
				return "computed", nil
			})
			if err != nil {
				t.Errorf("Once: %v", err)
			}
			results <- v
		}()
	}
	// Let the goroutines pile up on the flight, then release.
	for {
		mu.Lock()
		c := calls
		mu.Unlock()
		if c >= 1 {
			break
		}
	}
	close(release)
	wg.Wait()
	close(results)
	if calls != 1 {
		t.Fatalf("compute ran %d times under singleflight", calls)
	}
	for v := range results {
		if v != "computed" {
			t.Fatalf("waiter got %v", v)
		}
	}
}

func TestStatsCounters(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.store")
	s := openT(t, path, hash.Fingerprint())
	defer s.Close()
	s.Get(KindCompliance, sumOf("miss"))
	s.Put(KindCompliance, sumOf("hit"), []byte("v"))
	s.Get(KindCompliance, sumOf("hit"))
	st := s.Stats()
	tc := st.PerKind[KindCompliance]
	if tc.Hits != 1 || tc.Misses != 1 || tc.Writebacks != 1 {
		t.Fatalf("compliance stats = %+v", tc)
	}
	if st.Hits() != 1 || st.Misses() != 1 || st.Writebacks() != 1 {
		t.Fatalf("totals = h%d m%d w%d", st.Hits(), st.Misses(), st.Writebacks())
	}
	if got := st.HitRate(); got != 0.5 {
		t.Fatalf("hit rate = %v", got)
	}
	// Peek leaves counters alone.
	s.Peek(KindCompliance, sumOf("hit"))
	if st := s.Stats(); st.Hits() != 1 {
		t.Fatal("Peek counted as a hit")
	}
}
