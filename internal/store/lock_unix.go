//go:build unix

package store

import (
	"os"
	"syscall"
)

// lockFile takes the advisory exclusive lock on the open store file via
// flock(2). The lock belongs to the open file description, so the kernel
// releases it when the process exits or crashes — a dead server never
// wedges its store. The sidecar written on success only names the holder
// for LockedError messages; a stale sidecar is harmless.
func lockFile(f *os.File, path string) (release func(), err error) {
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		return nil, &LockedError{Path: path, Holder: readHolder(path)}
	}
	writeHolder(path)
	return func() {
		os.Remove(holderPath(path))
		syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
	}, nil
}
