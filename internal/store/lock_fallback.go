//go:build !unix

package store

import (
	"os"
)

// lockFile on platforms without flock falls back to the sidecar itself
// as the lock: O_EXCL creation either wins or names the holder. Unlike
// the flock path, a crashed process leaves the sidecar behind and the
// lock must be removed by hand — the trade for portability.
func lockFile(f *os.File, path string) (release func(), err error) {
	lf, cerr := os.OpenFile(holderPath(path), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if cerr != nil {
		if os.IsExist(cerr) {
			return nil, &LockedError{Path: path, Holder: readHolder(path)}
		}
		return nil, cerr
	}
	lf.WriteString(holderLine() + "\n")
	lf.Close()
	return func() { os.Remove(holderPath(path)) }, nil
}
