package store

import (
	"fmt"
	"os"
	"strings"
	"time"
)

// LockedError reports that the advisory lock on a store file is held
// elsewhere — by another process, or by another open Store in this one.
// A long-running `susc serve` holds its store for the life of the
// process; a second server (or a CLI run pointed at the same -cache)
// must refuse to append to the same log rather than interleave records,
// so Open fails with this typed error naming the holder.
type LockedError struct {
	// Path is the store file whose lock is held.
	Path string
	// Holder describes who holds the lock, as recorded in the sidecar
	// lock file ("pid 1234 on hostname since …"); empty when the sidecar
	// is unreadable.
	Holder string
}

func (e *LockedError) Error() string {
	if e.Holder == "" {
		return fmt.Sprintf("store: %s is locked by another process", e.Path)
	}
	return fmt.Sprintf("store: %s is locked by %s", e.Path, e.Holder)
}

// holderPath is the sidecar file recording who holds the lock. On unix
// the flock on the store file itself is the lock — the sidecar only
// feeds the holder name into LockedError messages and may be stale
// after a crash without ever wedging the store.
func holderPath(path string) string { return path + ".lock" }

// holderLine renders this process as a lock holder.
func holderLine() string {
	host, err := os.Hostname()
	if err != nil {
		host = "unknown-host"
	}
	return fmt.Sprintf("pid %d on %s since %s", os.Getpid(), host, time.Now().Format(time.RFC3339))
}

// readHolder returns the sidecar's holder line, or "" when unreadable.
func readHolder(path string) string {
	b, err := os.ReadFile(holderPath(path))
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(b))
}

// writeHolder records this process in the sidecar (best effort: the
// sidecar is diagnostic, the lock itself is what Open acquired).
func writeHolder(path string) {
	os.WriteFile(holderPath(path), []byte(holderLine()+"\n"), 0o644)
}
