// Package store is the persistent tier of the memoisation stack: a
// crash-safe, single-file, append-only record log that keeps verification
// artifacts — compliance verdicts, plan reports, network reports, lint
// findings, LTS summaries — across process restarts, keyed by the content
// hashes of internal/hash. It turns `susc` from a cold CLI into an
// incremental build step: an unchanged repository replays its verdicts
// from disk, and an edit recomputes only the declarations whose dependency
// cone includes the change.
//
// # Format
//
// A store file is a fixed header followed by records:
//
//	header: magic "SUSCSTR" (7) | format version (1) | engine fingerprint (32)
//	record: kind (1) | key (32) | value length (uvarint) | value | CRC-32 (4, LE)
//
// The CRC covers everything before it (kind, key, length, value). The
// whole index is rebuilt in memory on Open by replaying the log; a
// truncated or corrupt tail — a crash mid-append — is detected by the
// checksum or a short read and healed by truncating the file back to the
// last intact record. Opening a store whose version byte or engine
// fingerprint differs from the current build resets it wholesale: stale
// verdicts from an incompatible engine are never served.
//
// # Concurrency
//
// A Store is safe for concurrent use: reads take a shared lock over the
// in-memory index, appends serialise on a writer lock, and each record is
// written with a single Write call. The Once method provides singleflight
// deduplication so concurrent workers missing on the same key compute the
// artifact once.
package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"time"

	"susc/internal/faultinject"
	"susc/internal/hash"
)

// Kind discriminates the record tables of the store.
type Kind uint8

const (
	// KindCompliance: a compliance verdict H₁ ⊢ H₂ with its witness.
	KindCompliance Kind = 1
	// KindPlanReport: a verify.Report for one (client, plan) cone.
	KindPlanReport Kind = 2
	// KindNetworkReport: a verify.Report for a whole client vector under
	// bounded availability.
	KindNetworkReport Kind = 3
	// KindLint: the diagnostic list of one lint run over one file.
	KindLint Kind = 4
	// KindLTSSummary: the size summary of a built transition system.
	KindLTSSummary Kind = 5
	// KindAudit: the flow-audit record of one (client, plan) cone — the
	// per-plan active-framing coverage computed by internal/valid.
	KindAudit Kind = 6
)

// kinds lists every Kind for stats iteration, with stable display names.
var kinds = []struct {
	k    Kind
	name string
}{
	{KindCompliance, "compliance"},
	{KindPlanReport, "plan"},
	{KindNetworkReport, "network"},
	{KindLint, "lint"},
	{KindLTSSummary, "lts"},
	{KindAudit, "audit"},
}

// KindName returns the display name of a kind ("plan", "compliance", …).
func KindName(k Kind) string {
	for _, e := range kinds {
		if e.k == k {
			return e.name
		}
	}
	return fmt.Sprintf("kind(%d)", k)
}

// Kinds returns every known kind in display order.
func Kinds() []Kind {
	out := make([]Kind, len(kinds))
	for i, e := range kinds {
		out[i] = e.k
	}
	return out
}

const (
	magic = "SUSCSTR"
	// FormatVersion is the store format version byte. Bumping it resets
	// every existing store on open.
	FormatVersion = 1
	headerSize    = len(magic) + 1 + hash.Size
)

// TableStats counts one kind's traffic and residency.
type TableStats struct {
	Hits, Misses, Writebacks uint64
	Entries                  uint64
	Bytes                    uint64
}

// Stats is a snapshot of the store counters.
type Stats struct {
	// PerKind indexes table stats by Kind.
	PerKind map[Kind]TableStats
	// OpenTime is how long Open took (header check plus full replay).
	OpenTime time.Duration
	// Replayed is the number of intact records replayed on Open.
	Replayed int
	// HealedBytes is the size of the corrupt or truncated tail Open cut
	// off (0 for a clean file).
	HealedBytes int64
	// Reset reports that Open discarded the previous contents wholesale
	// (version or engine-fingerprint mismatch).
	Reset bool
}

// Hits sums hits over all kinds.
func (s Stats) Hits() uint64 { return s.total(func(t TableStats) uint64 { return t.Hits }) }

// Misses sums misses over all kinds.
func (s Stats) Misses() uint64 { return s.total(func(t TableStats) uint64 { return t.Misses }) }

// Writebacks sums write-backs over all kinds.
func (s Stats) Writebacks() uint64 { return s.total(func(t TableStats) uint64 { return t.Writebacks }) }

// Entries sums resident entries over all kinds.
func (s Stats) Entries() uint64 { return s.total(func(t TableStats) uint64 { return t.Entries }) }

// Bytes sums resident value bytes over all kinds.
func (s Stats) Bytes() uint64 { return s.total(func(t TableStats) uint64 { return t.Bytes }) }

// HitRate returns hits/(hits+misses) in [0,1], 0 when untouched.
func (s Stats) HitRate() float64 {
	h, m := s.Hits(), s.Misses()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

func (s Stats) total(f func(TableStats) uint64) uint64 {
	var n uint64
	for _, t := range s.PerKind {
		n += f(t)
	}
	return n
}

type ikey struct {
	kind Kind
	sum  hash.Sum
}

// Store is one open store file. Construct with Open; the zero value is
// not usable.
type Store struct {
	mu sync.RWMutex
	f  *os.File
	// unlock releases the advisory file lock Open acquired (nil once
	// Close has run).
	unlock func()
	index  map[ikey][]byte
	stats  map[Kind]*TableStats

	openTime    time.Duration
	replayed    int
	healedBytes int64
	reset       bool

	flight flightGroup
}

// Open opens (or creates) the store at path. The fingerprint identifies
// the engine producing the verdicts: a store written under a different
// fingerprint — or an older format version — is reset to empty, never
// served stale. A corrupt or truncated tail (a crash mid-append) is healed
// by truncating back to the last intact record.
//
// Open takes an advisory exclusive lock on the file for the life of the
// Store: a second Open of the same path — from another process, or from
// this one — fails with a typed *LockedError naming the holder instead
// of letting two writers interleave appends the in-process mutex cannot
// see.
func Open(path string, fingerprint hash.Sum) (*Store, error) {
	start := time.Now()
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	unlock, err := lockFile(f, path)
	if err != nil {
		f.Close()
		return nil, err
	}
	s := &Store{
		f:      f,
		unlock: unlock,
		index:  map[ikey][]byte{},
		stats:  map[Kind]*TableStats{},
	}
	for _, e := range kinds {
		s.stats[e.k] = &TableStats{}
	}
	if err := s.replay(fingerprint); err != nil {
		unlock()
		f.Close()
		return nil, err
	}
	s.openTime = time.Since(start)
	return s, nil
}

// replay validates the header and rebuilds the index from the log,
// healing any torn tail.
func (s *Store) replay(fingerprint hash.Sum) error {
	info, err := s.f.Stat()
	if err != nil {
		return err
	}
	size := info.Size()
	header := make([]byte, headerSize)
	copy(header, magic)
	header[len(magic)] = FormatVersion
	copy(header[len(magic)+1:], fingerprint[:])

	if size == 0 {
		_, err := s.f.Write(header)
		return err
	}
	got := make([]byte, headerSize)
	n, err := io.ReadFull(s.f, got)
	if err != nil && err != io.ErrUnexpectedEOF {
		return err
	}
	if prefix := got[:min(n, len(magic))]; string(prefix) != magic[:len(prefix)] {
		// Not a store file at all: refuse rather than destroy foreign data.
		return fmt.Errorf("store: %s is not a susc store (bad magic)", s.f.Name())
	}
	if n < headerSize {
		// Magic matches but the header is torn: a crash before it landed.
		return s.resetFile(header)
	}
	if got[len(magic)] != FormatVersion || string(got[len(magic)+1:]) != string(fingerprint[:]) {
		// Format or engine changed: wholesale invalidation.
		return s.resetFile(header)
	}

	// Replay records. good tracks the end of the last intact record.
	r := &countingReader{r: s.f, n: int64(headerSize)}
	good := int64(headerSize)
	br := newRecordReader(r)
	for {
		rec, err := br.next()
		if err == io.EOF {
			break
		}
		if err != nil {
			// Torn or corrupt tail: heal by truncating to the last intact
			// record. Everything after it is lost and will be recomputed.
			s.healedBytes = size - good
			if err := s.f.Truncate(good); err != nil {
				return err
			}
			break
		}
		k := ikey{kind: rec.kind, sum: rec.sum}
		st := s.stat(rec.kind)
		if old, dup := s.index[k]; dup {
			st.Bytes -= uint64(len(old))
			st.Entries--
		}
		s.index[k] = rec.value
		st.Entries++
		st.Bytes += uint64(len(rec.value))
		s.replayed++
		good = r.n
	}
	// Position the write cursor at the healed end.
	if _, err := s.f.Seek(good, io.SeekStart); err != nil {
		return err
	}
	return nil
}

func (s *Store) resetFile(header []byte) error {
	s.reset = true
	if err := s.f.Truncate(0); err != nil {
		return err
	}
	if _, err := s.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	_, err := s.f.Write(header)
	return err
}

func (s *Store) stat(k Kind) *TableStats {
	st, ok := s.stats[k]
	if !ok {
		st = &TableStats{}
		s.stats[k] = st
	}
	return st
}

// Get returns the value stored under (kind, sum). Traffic is counted in
// the stats. The returned slice is shared: callers must not mutate it.
func (s *Store) Get(kind Kind, sum hash.Sum) ([]byte, bool) {
	s.mu.RLock()
	v, ok := s.index[ikey{kind: kind, sum: sum}]
	s.mu.RUnlock()
	s.mu.Lock()
	if ok {
		s.stat(kind).Hits++
	} else {
		s.stat(kind).Misses++
	}
	s.mu.Unlock()
	return v, ok
}

// Peek is Get without touching the hit/miss counters, for callers probing
// speculatively (the incremental plan assessor pre-probes every plan and
// would otherwise double-count the misses it immediately recomputes).
func (s *Store) Peek(kind Kind, sum hash.Sum) ([]byte, bool) {
	s.mu.RLock()
	v, ok := s.index[ikey{kind: kind, sum: sum}]
	s.mu.RUnlock()
	return v, ok
}

// Put appends the record and indexes it. An identical resident value is
// skipped (no I/O); a different value for an existing key is appended and
// wins (last-writer-wins on replay too).
func (s *Store) Put(kind Kind, sum hash.Sum, value []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	k := ikey{kind: kind, sum: sum}
	if old, ok := s.index[k]; ok && string(old) == string(value) {
		s.stat(kind).Writebacks++
		return nil
	}
	if faultinject.Enabled() {
		// Fires before the append lands, so an injected panic models a
		// writer dying between deciding to persist and writing — the
		// record must be all-or-nothing on disk either way.
		faultinject.Fire(faultinject.StoreWrite, KindName(kind))
	}
	rec := appendRecord(nil, kind, sum, value)
	if _, err := s.f.Write(rec); err != nil {
		return err
	}
	st := s.stat(kind)
	if old, dup := s.index[k]; dup {
		st.Bytes -= uint64(len(old))
		st.Entries--
	}
	stored := append([]byte(nil), value...)
	s.index[k] = stored
	st.Entries++
	st.Bytes += uint64(len(stored))
	st.Writebacks++
	return nil
}

// Once runs compute under singleflight on (kind, sum): concurrent callers
// with the same key share one execution and its result. It does not read
// or write the store — pair it with Get/Put inside compute as needed.
func (s *Store) Once(kind Kind, sum hash.Sum, compute func() (any, error)) (any, error) {
	return s.flight.do(ikey{kind: kind, sum: sum}, compute)
}

// Stats returns a snapshot of the store counters.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := Stats{
		PerKind:     map[Kind]TableStats{},
		OpenTime:    s.openTime,
		Replayed:    s.replayed,
		HealedBytes: s.healedBytes,
		Reset:       s.reset,
	}
	for k, st := range s.stats {
		out.PerKind[k] = *st
	}
	return out
}

// Sync flushes the file to stable storage.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Sync()
}

// Close syncs and closes the file, releasing the advisory lock. The
// Store must not be used afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.unlock != nil {
		// Release while the descriptor is still open (flock unlocks on a
		// live fd; closing would release it anyway, but the sidecar must
		// go first so a racing Open never reads a stale holder as live).
		defer func() { s.unlock = nil }()
		defer s.unlock()
	}
	if err := s.f.Sync(); err != nil {
		s.f.Close()
		return err
	}
	return s.f.Close()
}

// --- record encoding ----------------------------------------------------

var crcTable = crc32.IEEETable

func appendRecord(dst []byte, kind Kind, sum hash.Sum, value []byte) []byte {
	start := len(dst)
	dst = append(dst, byte(kind))
	dst = append(dst, sum[:]...)
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], uint64(len(value)))
	dst = append(dst, lenBuf[:n]...)
	dst = append(dst, value...)
	crc := crc32.Checksum(dst[start:], crcTable)
	return binary.LittleEndian.AppendUint32(dst, crc)
}

type record struct {
	kind  Kind
	sum   hash.Sum
	value []byte
}

// countingReader tracks the absolute file offset consumed.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// recordReader decodes records sequentially, distinguishing a clean EOF
// (errEOF) from a torn tail (any other error).
type recordReader struct {
	r io.Reader
}

func newRecordReader(r io.Reader) *recordReader { return &recordReader{r: r} }

// maxValueLen bounds a single record value; a length beyond it marks the
// tail corrupt rather than attempting a huge allocation.
const maxValueLen = 1 << 30

var errCorrupt = fmt.Errorf("store: corrupt record")

func (rr *recordReader) next() (record, error) {
	var rec record
	var head [1 + hash.Size]byte
	if _, err := io.ReadFull(rr.r, head[:1]); err != nil {
		if err == io.EOF {
			return rec, io.EOF
		}
		return rec, errCorrupt
	}
	if _, err := io.ReadFull(rr.r, head[1:]); err != nil {
		return rec, errCorrupt
	}
	rec.kind = Kind(head[0])
	copy(rec.sum[:], head[1:])
	// Decode the length varint byte by byte so we can keep feeding the CRC.
	var lenBytes []byte
	var vlen uint64
	var shift uint
	for {
		var b [1]byte
		if _, err := io.ReadFull(rr.r, b[:]); err != nil {
			return rec, errCorrupt
		}
		lenBytes = append(lenBytes, b[0])
		vlen |= uint64(b[0]&0x7f) << shift
		if b[0] < 0x80 {
			break
		}
		shift += 7
		if shift > 63 {
			return rec, errCorrupt
		}
	}
	if vlen > maxValueLen {
		return rec, errCorrupt
	}
	rec.value = make([]byte, vlen)
	if _, err := io.ReadFull(rr.r, rec.value); err != nil {
		return rec, errCorrupt
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(rr.r, crcBuf[:]); err != nil {
		return rec, errCorrupt
	}
	crc := crc32.Checksum(head[:], crcTable)
	crc = crc32.Update(crc, crcTable, lenBytes)
	crc = crc32.Update(crc, crcTable, rec.value)
	if crc != binary.LittleEndian.Uint32(crcBuf[:]) {
		return rec, errCorrupt
	}
	return rec, nil
}

// --- singleflight -------------------------------------------------------

type flightCall struct {
	wg  sync.WaitGroup
	val any
	err error
}

type flightGroup struct {
	mu sync.Mutex
	m  map[ikey]*flightCall
}

func (g *flightGroup) do(k ikey, fn func() (any, error)) (any, error) {
	g.mu.Lock()
	if g.m == nil {
		g.m = map[ikey]*flightCall{}
	}
	if c, ok := g.m[k]; ok {
		g.mu.Unlock()
		c.wg.Wait()
		return c.val, c.err
	}
	c := &flightCall{}
	c.wg.Add(1)
	g.m[k] = c
	g.mu.Unlock()

	// A panic in fn must not strand the waiters queued on this flight:
	// release them with an error and drop the entry before the panic
	// continues into the leader's own recovery (a budget.Guard, which
	// turns it into a typed internal error).
	completed := false
	defer func() {
		if !completed {
			c.err = fmt.Errorf("store: in-flight %s compute panicked", KindName(k.kind))
		}
		c.wg.Done()
		g.mu.Lock()
		delete(g.m, k)
		g.mu.Unlock()
	}()
	c.val, c.err = fn()
	completed = true
	return c.val, c.err
}
