// Randomized-world soak test: generate whole repositories of random
// services with security events and policies, classify every plan
// statically, and check that the static verdicts and the run-time
// behaviour tell the same story on every sampled world.
package susc_test

import (
	"fmt"
	"math/rand"
	"testing"

	"susc/internal/hexpr"
	"susc/internal/history"
	"susc/internal/network"
	"susc/internal/plans"
	"susc/internal/policy"
	"susc/internal/verify"
)

// randomWorld builds a repository of n services, each a random event
// prologue followed by a random contract, plus a client with one policy-
// framed request.
func randomWorld(seed int64, n int) (network.Repository, *policy.Table, hexpr.Expr) {
	rnd := rand.New(rand.NewSource(seed))
	// the policy forbids the event "bad" (any single int argument)
	auto := &policy.Automaton{
		Name:   "noBad",
		States: []string{"q0", "qv"},
		Start:  "q0",
		Finals: []string{"qv"},
		Edges: []policy.Edge{
			{From: "q0", To: "qv", EventName: "bad", Guards: []policy.Guard{policy.GAny()}},
		},
	}
	inst := auto.MustInstantiate(policy.Binding{})
	table := policy.NewTable(inst)
	repo := network.Repository{}
	for i := 0; i < n; i++ {
		// random service: maybe a bad event, then a contract
		var parts []hexpr.Expr
		if rnd.Intn(3) == 0 {
			parts = append(parts, hexpr.Act(hexpr.E("bad", hexpr.Int(i))))
		} else if rnd.Intn(2) == 0 {
			parts = append(parts, hexpr.Act(hexpr.E("ok", hexpr.Int(i))))
		}
		parts = append(parts, hexpr.GenerateContract(rnd, 3))
		repo[hexpr.Location(fmt.Sprintf("svc%d", i))] = hexpr.Cat(parts...)
	}
	client := hexpr.Open("r1", inst.ID(), hexpr.GenerateContract(rnd, 3))
	return repo, table, client
}

// TestSoakStaticVerdictsMatchRuntime samples many random worlds and checks
// the paper's guarantees end to end:
//
//   - valid plans: every unmonitored run completes (or loops within fuel)
//     with a valid history, under many schedulers;
//   - security-violating plans: monitored runs never complete with an
//     invalid history (they abort or stay valid);
//   - non-compliant plans: the product automaton has a witness.
func TestSoakStaticVerdictsMatchRuntime(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	worlds := 40
	counts := map[verify.Verdict]int{}
	for seed := int64(0); seed < int64(worlds); seed++ {
		repo, table, client := randomWorld(seed, 4)
		as, err := plans.AssessAll(repo, table, "cl", client, plans.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range as {
			counts[a.Report.Verdict]++
			switch a.Report.Verdict {
			case verify.Valid:
				for s := int64(0); s < 8; s++ {
					cfg := network.NewConfig(repo, table,
						network.Client{Loc: "cl", Expr: client, Plan: a.Plan})
					res := cfg.Run(network.RunOptions{
						Rand: rand.New(rand.NewSource(s)), MaxSteps: 2000})
					if res.Status == network.Deadlock || res.Status == network.SecurityAbort {
						t.Fatalf("world %d, valid plan %s, seed %d: %s",
							seed, a.Plan, s, res)
					}
					if !history.Valid(cfg.Comps[0].Hist, table) {
						t.Fatalf("world %d, valid plan %s: invalid history %s",
							seed, a.Plan, cfg.Comps[0].Hist)
					}
				}
			case verify.SecurityViolation:
				for s := int64(0); s < 4; s++ {
					cfg := network.NewConfig(repo, table,
						network.Client{Loc: "cl", Expr: client, Plan: a.Plan})
					res := cfg.Run(network.RunOptions{
						Rand: rand.New(rand.NewSource(s)), Monitored: true, MaxSteps: 2000})
					if res.Status == network.Completed &&
						!history.Valid(cfg.Comps[0].Hist, table) {
						t.Fatalf("world %d, plan %s: monitored run completed with invalid history",
							seed, a.Plan)
					}
				}
			}
		}
	}
	if counts[verify.Valid] == 0 || counts[verify.SecurityViolation] == 0 ||
		counts[verify.NotCompliant] == 0 {
		t.Fatalf("degenerate soak sample: %v", counts)
	}
	t.Logf("soak verdicts: %v", counts)
}
