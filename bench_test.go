// Benchmark harness: one benchmark per reproduced figure/claim of the
// paper (Fig. 1–3, the §2 plan classification) plus parameter sweeps for
// every decision procedure — product-automaton construction, validity
// model checking (with the regularization ablation), plan synthesis
// (with the compliance-pruning ablation), whole-network verification, the
// run-time monitor overhead the paper's result removes, and effect
// inference. EXPERIMENTS.md records representative numbers.
package susc_test

import (
	"os"

	"fmt"
	"math/rand"
	"testing"

	"susc/internal/benchgen"
	"susc/internal/compliance"
	"susc/internal/contract"
	"susc/internal/hexpr"
	"susc/internal/history"
	"susc/internal/lambda"
	"susc/internal/lts"
	"susc/internal/memo"
	"susc/internal/network"
	"susc/internal/paperex"
	"susc/internal/parser"
	"susc/internal/plans"
	"susc/internal/policy"
	"susc/internal/valid"
	"susc/internal/verify"
)

// --- Figure 1: policy recognition -----------------------------------------

func BenchmarkFig1PolicyRecognition(b *testing.B) {
	phi1 := paperex.Phi1()
	trace := []hexpr.Event{
		hexpr.E(paperex.EvSgn, hexpr.Sym("s4")),
		hexpr.E(paperex.EvPrice, hexpr.Int(50)),
		hexpr.E(paperex.EvRating, hexpr.Int(90)),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !phi1.Recognizes(trace) {
			b.Fatal("S4 must violate phi1")
		}
	}
}

// --- Figure 2: the compliance matrix ---------------------------------------

func BenchmarkFig2ComplianceMatrix(b *testing.B) {
	brBody, _, err := contract.RequestBody(paperex.Broker(), "r3")
	if err != nil {
		b.Fatal(err)
	}
	hotels := []hexpr.Expr{paperex.S1(), paperex.S2(), paperex.S3(), paperex.S4()}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		okCount := 0
		for _, h := range hotels {
			ok, err := compliance.Compliant(brBody, h)
			if err != nil {
				b.Fatal(err)
			}
			if ok {
				okCount++
			}
		}
		if okCount != 3 {
			b.Fatalf("compliant hotels = %d, want 3", okCount)
		}
	}
}

// --- Figure 3: replaying the computation fragment --------------------------

func BenchmarkFig3Run(b *testing.B) {
	plan := network.Plan{"r1": paperex.LocBr, "r3": paperex.LocS3}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := network.NewConfig(paperex.Repository(), paperex.Policies(),
			network.Client{Loc: paperex.LocC1, Expr: paperex.C1(), Plan: plan})
		res := cfg.Run(network.RunOptions{Rand: rand.New(rand.NewSource(int64(i)))})
		if res.Status != network.Completed {
			b.Fatalf("run failed: %s", res)
		}
	}
}

// --- §2 plan classification -------------------------------------------------

func BenchmarkSect2PlanClassification(b *testing.B) {
	repo := paperex.Repository()
	table := paperex.Policies()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		got, err := plans.Synthesize(repo, table, paperex.LocC1, paperex.C1(),
			plans.Options{PruneNonCompliant: true})
		if err != nil {
			b.Fatal(err)
		}
		if len(got) != 1 {
			b.Fatalf("valid plans = %d", len(got))
		}
	}
}

// --- B1: product-automaton construction ------------------------------------

func BenchmarkProductAutomaton(b *testing.B) {
	for _, cfg := range []struct{ width, depth int }{
		{2, 2}, {2, 4}, {2, 6}, {4, 2}, {4, 4}, {8, 2},
	} {
		name := fmt.Sprintf("width=%d/depth=%d", cfg.width, cfg.depth)
		b.Run(name, func(b *testing.B) {
			client, server := benchgen.PingPong(cfg.width, cfg.depth)
			var states int
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p, err := compliance.NewProduct(client, server)
				if err != nil {
					b.Fatal(err)
				}
				if !p.Empty() {
					b.Fatal("ping-pong pair must be compliant")
				}
				states = len(p.States)
			}
			b.ReportMetric(float64(states), "states")
		})
	}
}

func BenchmarkProductLoop(b *testing.B) {
	for _, width := range []int{2, 8, 32, 128} {
		b.Run(fmt.Sprintf("width=%d", width), func(b *testing.B) {
			client, server := benchgen.LoopContract(width)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ok, err := compliance.Compliant(client, server)
				if err != nil || !ok {
					b.Fatalf("loop pair: %v %v", ok, err)
				}
			}
		})
	}
}

// Ablation: the two compliance deciders (Theorem 1 vs Definition 4).
func BenchmarkComplianceDeciders(b *testing.B) {
	client, server := benchgen.PingPong(3, 4)
	b.Run("product", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if ok, err := compliance.Compliant(client, server); err != nil || !ok {
				b.Fatal(ok, err)
			}
		}
	})
	b.Run("readysets", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if ok, err := compliance.CompliantReadySets(client, server); err != nil || !ok {
				b.Fatal(ok, err)
			}
		}
	})
}

// --- B2: validity model checking --------------------------------------------

func BenchmarkValidity(b *testing.B) {
	for _, cfg := range []struct{ events, nesting int }{
		{10, 1}, {100, 1}, {500, 1}, {100, 4}, {100, 8},
	} {
		e, table := benchgen.EventChain(cfg.events, cfg.nesting)
		b.Run(fmt.Sprintf("events=%d/policies=%d/direct", cfg.events, cfg.nesting), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ok, err := valid.Valid(e, table)
				if err != nil || !ok {
					b.Fatal(ok, err)
				}
			}
		})
		b.Run(fmt.Sprintf("events=%d/policies=%d/automata", cfg.events, cfg.nesting), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := valid.ModelCheck(e, table); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Ablation: redundant nested framings with and without regularization.
func BenchmarkRegularization(b *testing.B) {
	e, table := benchgen.RedundantFramings(50, 12)
	b.Run("with-regularization", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			reg := valid.Regularize(e)
			ok, err := valid.Valid(reg, table)
			if err != nil || !ok {
				b.Fatal(ok, err)
			}
		}
	})
	b.Run("without-regularization", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ok, err := valid.Valid(e, table)
			if err != nil || !ok {
				b.Fatal(ok, err)
			}
		}
	})
	b.Run("regularize-only", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if valid.FramingDepth(valid.Regularize(e)) != 1 {
				b.Fatal("regularization should collapse the nest")
			}
		}
	})
}

// --- B3: plan synthesis -------------------------------------------------------

func BenchmarkPlanSynthesis(b *testing.B) {
	for _, n := range []int{4, 8, 16, 32} {
		w := benchgen.Hotels(n)
		for _, pruned := range []bool{true, false} {
			name := fmt.Sprintf("hotels=%d/pruned=%v", n, pruned)
			b.Run(name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					got, err := plans.Synthesize(w.Repo, w.Table, w.Loc, w.Client,
						plans.Options{PruneNonCompliant: pruned})
					if err != nil {
						b.Fatal(err)
					}
					if len(got) == 0 {
						b.Fatal("no valid plan found")
					}
				}
			})
		}
	}
}

// BenchmarkPlanSynthesisChained scales the request dimension: fanout^depth
// complete plans over a chained-brokers repository with heavily shared
// state. The legacy engine explores every plan from scratch; the fused
// engine expands the shared configuration graph once and replays plans
// over it (BENCH_pr2.json records the headline comparison).
func BenchmarkPlanSynthesisChained(b *testing.B) {
	for _, cfg := range []struct{ depth, fanout int }{
		{2, 4}, {4, 4}, {12, 2},
	} {
		w := benchgen.Chained(cfg.depth, cfg.fanout)
		for _, engine := range []struct {
			name string
			e    plans.Engine
			wk   int
		}{
			{"legacy", plans.EngineLegacy, 1},
			{"fused", plans.EngineFused, 1},
			{"fused-workers=4", plans.EngineFused, 4},
		} {
			name := fmt.Sprintf("depth=%d/fanout=%d/%s", cfg.depth, cfg.fanout, engine.name)
			b.Run(name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					as, err := plans.AssessAll(w.Repo, w.Table, w.Loc, w.Client,
						plans.Options{
							PruneNonCompliant: true,
							Engine:            engine.e,
							Workers:           engine.wk,
						})
					if err != nil {
						b.Fatal(err)
					}
					if len(as) != w.PlanCount {
						b.Fatalf("plans = %d, want %d", len(as), w.PlanCount)
					}
				}
			})
		}
	}
}

// --- B4: whole-plan verification ---------------------------------------------

func BenchmarkVerifyCheckPlan(b *testing.B) {
	for _, n := range []int{4, 16, 64} {
		w := benchgen.Hotels(n)
		b.Run(fmt.Sprintf("hotels=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			var states int
			for i := 0; i < b.N; i++ {
				r, err := verify.CheckPlan(w.Repo, w.Table, w.Loc, w.Client, w.GoodPlan)
				if err != nil {
					b.Fatal(err)
				}
				if r.Verdict != verify.Valid {
					b.Fatalf("plan should be valid: %s", r)
				}
				states = r.States
			}
			b.ReportMetric(float64(states), "states")
		})
	}
}

// --- B5: the run-time monitor the paper makes unnecessary ---------------------

func BenchmarkMonitor(b *testing.B) {
	w := benchgen.Hotels(8)
	for _, monitored := range []bool{false, true} {
		name := "off"
		if monitored {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg := network.NewConfig(w.Repo, w.Table,
					network.Client{Loc: w.Loc, Expr: w.Client, Plan: w.GoodPlan})
				res := cfg.Run(network.RunOptions{
					Monitored: monitored,
					Rand:      rand.New(rand.NewSource(int64(i))),
				})
				if res.Status != network.Completed {
					b.Fatalf("run: %s", res)
				}
			}
		})
	}
}

// Monitor per-item cost in isolation.
func BenchmarkMonitorAppend(b *testing.B) {
	table := paperex.Policies()
	phi1 := paperex.Phi1().ID()
	items := []history.Item{
		history.OpenItem(phi1),
		history.EventItem(hexpr.E(paperex.EvSgn, hexpr.Sym("s3"))),
		history.EventItem(hexpr.E(paperex.EvPrice, hexpr.Int(90))),
		history.EventItem(hexpr.E(paperex.EvRating, hexpr.Int(100))),
		history.CloseItem(phi1),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := history.NewMonitor(table)
		for _, it := range items {
			if err := m.Append(it); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- B6: effect inference -------------------------------------------------------

func BenchmarkEffectInference(b *testing.B) {
	for _, n := range []int{10, 100, 1000} {
		prog := benchgen.LambdaChain(n)
		b.Run(fmt.Sprintf("events=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, _, err := lambda.InferClosed(prog)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- substrate micro-benchmarks --------------------------------------------------

func BenchmarkUsageAutomatonStep(b *testing.B) {
	phi1 := paperex.Phi1()
	ev := hexpr.E(paperex.EvSgn, hexpr.Sym("s9"))
	s := phi1.Initial()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s = phi1.Step(phi1.Initial(), ev)
	}
	_ = s
}

func BenchmarkProjection(b *testing.B) {
	br := paperex.Broker()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		contract.Project(br)
	}
}

func BenchmarkPolicyTableLookup(b *testing.B) {
	table := paperex.Policies()
	id := paperex.Phi1().ID()
	trace := []hexpr.Event{hexpr.E(paperex.EvSgn, hexpr.Sym("s1"))}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !table.Violates(id, trace) {
			b.Fatal("s1 is blacklisted")
		}
	}
}

var _ = policy.NewTable // keep the import in the file's vocabulary

// --- extension benchmarks -----------------------------------------------------

func BenchmarkSubstitutable(b *testing.B) {
	for _, width := range []int{2, 8, 32} {
		oldSvc, _ := benchgen.LoopContract(width)
		// the new service drops the last looping output
		newSvc, _ := benchgen.LoopContract(width - 1)
		b.Run(fmt.Sprintf("width=%d", width), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ok, err := compliance.Substitutable(oldSvc, newSvc)
				if err != nil || !ok {
					b.Fatal(ok, err)
				}
			}
		})
	}
}

func BenchmarkBisimulationMinimize(b *testing.B) {
	client, _ := benchgen.PingPong(4, 5)
	l, err := lts.Build(client)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Minimize()
	}
	b.ReportMetric(float64(l.Len()), "states")
}

func BenchmarkParserFile(b *testing.B) {
	src, err := os.ReadFile("testdata/hotel.susc")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := parser.ParseFile(string(src)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLambdaSession(b *testing.B) {
	client := parser.MustParseLambda(
		`(rec p(x: unit): unit . select { m => branch { a => p () } | q => () }) ()`)
	server := parser.MustParseLambda(
		`(rec s(x: unit): unit . branch { m => select { a => s () } | q => () }) ()`)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := lambda.EvalSession(client, server, 5000, rand.New(rand.NewSource(int64(i))))
		if err != nil {
			b.Fatal(err)
		}
		if res.Status == lambda.SessionStuck {
			b.Fatal("compliant session stuck")
		}
	}
}

func BenchmarkCheckNetworkSharedCapacity(b *testing.B) {
	repo := network.Repository{
		"A": hexpr.RecvThen("hello", hexpr.Eps()),
		"B": hexpr.RecvThen("hello", hexpr.Eps()),
	}
	mk := func(r1, r2 hexpr.RequestID, a, bb hexpr.Location) verify.ClientSpec {
		return verify.ClientSpec{
			Loc: hexpr.Location("c" + r1),
			Client: hexpr.Open(r1, hexpr.NoPolicy,
				hexpr.SendThen("hello",
					hexpr.Open(r2, hexpr.NoPolicy, hexpr.SendThen("hello", hexpr.Eps())))),
			Plan: network.Plan{r1: a, r2: bb},
		}
	}
	clients := []verify.ClientSpec{
		mk("r1", "r2", "A", "B"),
		mk("r3", "r4", "B", "A"),
	}
	table := paperex.Policies()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := verify.CheckNetwork(repo, table, clients,
			verify.Options{Capacities: map[hexpr.Location]int{"A": 2, "B": 2}})
		if err != nil {
			b.Fatal(err)
		}
		if r.Verdict != verify.Valid {
			b.Fatalf("verdict %s", r)
		}
	}
}

// --- the λ network runtime -----------------------------------------------------

func BenchmarkLambdaRunNetwork(b *testing.B) {
	client := parser.MustParseLambda(`
open r1 {
  select { Req => branch { CoBo => select { Pay => () } | NoAv => () } }
}`)
	broker := parser.MustParseLambda(`
branch { Req =>
  open r3 { select { IdC => branch { Bok => () | UnA => () } } };
  select { CoBo => branch { Pay => () } | NoAv => () }
}`)
	hotel := parser.MustParseLambda(`
fire sgn(s3); fire price(90); fire rating(100);
branch { IdC => select { Bok => () | UnA => () } }`)
	repo := lambda.ServiceRepo{"br": broker, "s3": hotel}
	plan := network.Plan{"r1": "br", "r3": "s3"}
	for _, monitored := range []bool{false, true} {
		name := "monitor-off"
		if monitored {
			name = "monitor-on"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := lambda.RunNetwork(client, "c1", repo, plan, lambda.NetOptions{
					Rand: rand.New(rand.NewSource(int64(i))), Monitored: monitored,
					Table: paperex.Policies(),
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.Status != lambda.SessionCompleted {
					b.Fatalf("status %s", res.Status)
				}
			}
		})
	}
}

func BenchmarkPlanSynthesisParallel(b *testing.B) {
	w := benchgen.Hotels(32)
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				as, err := plans.AssessAll(w.Repo, w.Table, w.Loc, w.Client,
					plans.Options{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				if len(as) == 0 {
					b.Fatal("no plans")
				}
			}
		})
	}
}

// BenchmarkPlanSynthesisCached measures repeated synthesis over an
// unchanged repository with a shared memo.Cache — the steady-state cost a
// long-lived tool pays per query once verdicts, products, projections and
// step sets are warm. The hit% metric is the cache hit rate over the whole
// run.
func BenchmarkPlanSynthesisCached(b *testing.B) {
	for _, n := range []int{32, 64} {
		w := benchgen.Hotels(n)
		b.Run(fmt.Sprintf("hotels=%d", n), func(b *testing.B) {
			cache := memo.New()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				as, err := plans.AssessAll(w.Repo, w.Table, w.Loc, w.Client,
					plans.Options{PruneNonCompliant: true, Workers: 4, Cache: cache})
				if err != nil {
					b.Fatal(err)
				}
				if len(as) == 0 {
					b.Fatal("no plans")
				}
			}
			st := cache.Stats()
			b.ReportMetric(st.HitRate()*100, "hit%")
			b.ReportMetric(float64(st.Hits()+st.Misses()), "lookups")
		})
	}
}
