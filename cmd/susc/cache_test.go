package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"susc/internal/benchgen"
)

// captureBoth runs fn with stdout and stderr redirected (the verdict goes
// to stdout, `-stats` lines to stderr) and returns both.
func captureBoth(t *testing.T, fn func() error) (stdout, stderr string, err error) {
	t.Helper()
	oldOut, oldErr := os.Stdout, os.Stderr
	ro, wo, perr := os.Pipe()
	if perr != nil {
		t.Fatal(perr)
	}
	re, we, perr := os.Pipe()
	if perr != nil {
		t.Fatal(perr)
	}
	os.Stdout, os.Stderr = wo, we
	defer func() { os.Stdout, os.Stderr = oldOut, oldErr }()
	var bufOut, bufErr bytes.Buffer
	done := make(chan struct{}, 2)
	go func() { bufOut.ReadFrom(ro); done <- struct{}{} }()
	go func() { bufErr.ReadFrom(re); done <- struct{}{} }()
	err = fn()
	wo.Close()
	we.Close()
	<-done
	<-done
	os.Stdout, os.Stderr = oldOut, oldErr
	return bufOut.String(), bufErr.String(), err
}

// storeKindLine extracts (hits, misses) from a `stats: store/<kind> …`
// stderr line — the same line the CI incremental-smoke job gates on.
func storeKindLine(t *testing.T, stderr, kind string) (hits, misses int) {
	t.Helper()
	re := regexp.MustCompile(fmt.Sprintf(`stats: store/%s (\d+) hits, (\d+) misses`, kind))
	m := re.FindStringSubmatch(stderr)
	if m == nil {
		t.Fatalf("no stats: store/%s line in stderr:\n%s", kind, stderr)
	}
	hits, _ = strconv.Atoi(m[1])
	misses, _ = strconv.Atoi(m[2])
	return hits, misses
}

// TestCmdCheckAllCache is the end-to-end incremental loop: a cold
// `checkall -cache` populates the store, a warm rerun replays every plan
// verdict from disk with identical output, and a one-declaration edit
// recomputes exactly the edited service's dependency cone — one client of
// six.
func TestCmdCheckAllCache(t *testing.T) {
	const depth, fanout, n = 3, 3, 6
	dir := t.TempDir()
	spec := filepath.Join(dir, "clients.susc")
	cacheDir := filepath.Join(dir, "cache")
	src := benchgen.ChainedClientsSource(depth, fanout, n)
	if err := os.WriteFile(spec, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	wantVerdict := fmt.Sprintf("network of %d client(s): valid", n)

	coldOut, coldErr, err := captureBoth(t, func() error {
		return run([]string{"checkall", spec, "-cache", cacheDir, "-stats"})
	})
	if err != nil {
		t.Fatalf("cold: %v\n%s", err, coldErr)
	}
	if !strings.Contains(coldOut, wantVerdict) {
		t.Fatalf("cold verdict:\n%s", coldOut)
	}
	if !strings.Contains(coldErr, "stats: store ") {
		t.Fatalf("cold run printed no store stats:\n%s", coldErr)
	}
	if _, misses := storeKindLine(t, coldErr, "plan"); misses != n {
		t.Fatalf("cold run: %d plan misses, want %d", misses, n)
	}

	warmOut, warmErr, err := captureBoth(t, func() error {
		return run([]string{"checkall", spec, "-cache", cacheDir, "-stats"})
	})
	if err != nil {
		t.Fatalf("warm: %v\n%s", err, warmErr)
	}
	if warmOut != coldOut {
		t.Fatalf("warm stdout differs from cold:\ncold:\n%s\nwarm:\n%s", coldOut, warmOut)
	}
	hits, misses := storeKindLine(t, warmErr, "plan")
	if hits != n || misses != 0 {
		t.Fatalf("warm run: %d hits, %d misses; want %d and 0", hits, misses, n)
	}
	if lh, lm := storeKindLine(t, warmErr, "lint"); lh != 1 || lm != 0 {
		t.Fatalf("warm run: lint %d hits, %d misses; want 1 and 0", lh, lm)
	}

	// One-declaration edit: client 0's divergent service s1_1 gains an
	// extra signing event. Only that client's cone may recompute.
	w := benchgen.ChainedClients(depth, fanout, n)
	target := string(w.Divergent(0))
	needle := fmt.Sprintf("sgn(%s)", target)
	if !strings.Contains(src, needle) {
		t.Fatalf("rendered source has no %q", needle)
	}
	edited := strings.Replace(src, needle, needle+" . sgn(edited)", 1)
	if err := os.WriteFile(spec, []byte(edited), 0o644); err != nil {
		t.Fatal(err)
	}

	editOut, editErr, err := captureBoth(t, func() error {
		return run([]string{"checkall", spec, "-cache", cacheDir, "-stats"})
	})
	if err != nil {
		t.Fatalf("edit: %v\n%s", err, editErr)
	}
	if !strings.Contains(editOut, wantVerdict) {
		t.Fatalf("edit verdict:\n%s", editOut)
	}
	hits, misses = storeKindLine(t, editErr, "plan")
	if misses != 1 || hits != n-1 {
		t.Fatalf("after editing %s: %d plan misses, %d hits; want exactly 1 and %d",
			target, misses, hits, n-1)
	}
	if _, lm := storeKindLine(t, editErr, "lint"); lm != 1 {
		t.Fatalf("edited file should miss the lint cache once, got %d", lm)
	}
}

// TestCmdCheckCache: `check -client … -cache` replays a single client's
// verdict from the store.
func TestCmdCheckCache(t *testing.T) {
	dir := t.TempDir()
	cacheDir := filepath.Join(dir, "cache")

	cold, coldErr, err := captureBoth(t, func() error {
		return run([]string{"check", hotelFile, "-client", "c1", "-cache", cacheDir, "-stats"})
	})
	if err != nil {
		t.Fatalf("cold: %v\n%s", err, coldErr)
	}
	warm, warmErr, err := captureBoth(t, func() error {
		return run([]string{"check", hotelFile, "-client", "c1", "-cache", cacheDir, "-stats"})
	})
	if err != nil {
		t.Fatalf("warm: %v\n%s", err, warmErr)
	}
	if warm != cold {
		t.Fatalf("warm stdout differs:\ncold:\n%s\nwarm:\n%s", cold, warm)
	}
	if hits, misses := storeKindLine(t, warmErr, "plan"); hits != 1 || misses != 0 {
		t.Fatalf("warm check: %d hits, %d misses; want 1 and 0", hits, misses)
	}
}

// TestCmdCheckAllCacheWithCaps: the bounded-availability path persists
// whole-network verdicts and replays them warm, with identical output.
func TestCmdCheckAllCacheWithCaps(t *testing.T) {
	dir := t.TempDir()
	cacheDir := filepath.Join(dir, "cache")
	args := []string{"checkall", hotelFile, "-cap", "br=1,s3=1,s4=1", "-cache", cacheDir, "-stats"}

	cold, coldErr, err := captureBoth(t, func() error { return run(args) })
	if err != nil {
		t.Fatalf("cold: %v\n%s", err, coldErr)
	}
	warm, warmErr, err := captureBoth(t, func() error { return run(args) })
	if err != nil {
		t.Fatalf("warm: %v\n%s", err, warmErr)
	}
	if warm != cold {
		t.Fatalf("warm stdout differs:\ncold:\n%s\nwarm:\n%s", cold, warm)
	}
	if hits, misses := storeKindLine(t, warmErr, "network"); hits != 1 || misses != 0 {
		t.Fatalf("warm network: %d hits, %d misses; want 1 and 0", hits, misses)
	}
}

// TestCmdLintCache: lint replays a clean file's findings from disk at
// whole-file granularity.
func TestCmdLintCache(t *testing.T) {
	dir := t.TempDir()
	cacheDir := filepath.Join(dir, "cache")
	args := []string{"lint", hotelFile, "-cache", cacheDir, "-stats"}

	cold, coldErr, err := captureBoth(t, func() error { return run(args) })
	if err != nil {
		t.Fatalf("cold: %v\n%s", err, coldErr)
	}
	warm, warmErr, err := captureBoth(t, func() error { return run(args) })
	if err != nil {
		t.Fatalf("warm: %v\n%s", err, warmErr)
	}
	if warm != cold {
		t.Fatalf("warm stdout differs:\ncold:\n%s\nwarm:\n%s", cold, warm)
	}
	if hits, misses := storeKindLine(t, warmErr, "lint"); hits != 1 || misses != 0 {
		t.Fatalf("warm lint: %d hits, %d misses; want 1 and 0", hits, misses)
	}
}
