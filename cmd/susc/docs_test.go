package main

import (
	"flag"
	"os"
	"strings"
	"testing"

	"susc/internal/server"
)

// TestServeFlagsDocumented holds the documentation to the code: every
// flag the serve mode registers appears in the README's serve section
// and in the package doc comment's serve entry, and every served
// endpoint appears in the README's endpoint table. Flags or modes added
// without docs (or documented ones that were removed) fail here.
func TestServeFlagsDocumented(t *testing.T) {
	readme, err := os.ReadFile("../../README.md")
	if err != nil {
		t.Fatal(err)
	}
	source, err := os.ReadFile("main.go")
	if err != nil {
		t.Fatal(err)
	}
	docComment := string(source[:strings.Index(string(source), "package main")])

	fs, _ := serveFlagSet()
	fs.VisitAll(func(f *flag.Flag) {
		if !strings.Contains(string(readme), "`-"+f.Name) {
			t.Errorf("README.md does not document serve flag -%s", f.Name)
		}
		if !strings.Contains(docComment, "-"+f.Name) {
			t.Errorf("main.go doc comment does not mention serve flag -%s", f.Name)
		}
	})

	for _, mode := range server.Modes {
		if !strings.Contains(string(readme), "/v1/"+mode+"`") {
			t.Errorf("README.md endpoint table misses /v1/%s", mode)
		}
	}
	for _, endpoint := range []string{"/healthz", "/stats"} {
		if !strings.Contains(string(readme), endpoint) {
			t.Errorf("README.md does not document %s", endpoint)
		}
	}
}
