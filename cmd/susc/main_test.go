package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// capture runs fn with os.Stdout redirected and returns what it printed.
func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	errc := make(chan error, 1)
	var buf bytes.Buffer
	done := make(chan struct{})
	go func() {
		buf.ReadFrom(r)
		close(done)
	}()
	errc <- fn()
	w.Close()
	<-done
	os.Stdout = old
	return buf.String(), <-errc
}

const hotelFile = "../../testdata/hotel.susc"

func TestCmdParse(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"parse", hotelFile}) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"instance phi1", "service  br", "client   c1"} {
		if !strings.Contains(out, want) {
			t.Errorf("parse output missing %q:\n%s", want, out)
		}
	}
}

func TestCmdProject(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"project", hotelFile}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Req?") || strings.Contains(out, "sgn") {
		t.Errorf("projection should keep communications and drop events:\n%s", out)
	}
}

func TestCmdCompliance(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"compliance", hotelFile}) })
	if err != nil {
		t.Fatal(err)
	}
	// the broker's request r3 row: s2 must be "no"
	found := false
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "br.r3") {
			found = true
			fields := strings.Fields(line)
			// header order: br s1 s2 s3 s4
			if fields[1] != "no" || fields[2] != "YES" || fields[3] != "no" ||
				fields[4] != "YES" || fields[5] != "YES" {
				t.Errorf("br.r3 row wrong: %q", line)
			}
		}
	}
	if !found {
		t.Errorf("no br.r3 row:\n%s", out)
	}
}

func TestCmdValidity(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"validity", hotelFile}) })
	if err != nil {
		t.Fatal(err)
	}
	var s1Line, s3Line string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "s1") {
			s1Line = line
		}
		if strings.HasPrefix(line, "s3") {
			s3Line = line
		}
	}
	// s1 violates both, s3 violates only phi2
	if !strings.Contains(s1Line, "VIOL") {
		t.Errorf("s1 line = %q", s1Line)
	}
	f := strings.Fields(s3Line)
	if len(f) != 3 || f[1] != "ok" || f[2] != "VIOL" {
		t.Errorf("s3 line = %q", s3Line)
	}
}

func TestCmdPlans(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"plans", hotelFile, "-client", "c2"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "{r2>br,r3>s4}") || !strings.Contains(out, "1 valid") {
		t.Errorf("plans output:\n%s", out)
	}
}

func TestCmdPlansStream(t *testing.T) {
	// -stream must print the same assessments as the batch path, one per
	// line as they arrive, followed by the same summary.
	batch, err := capture(t, func() error {
		return run([]string{"plans", hotelFile, "-client", "c2"})
	})
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := capture(t, func() error {
		return run([]string{"plans", hotelFile, "-client", "c2", "-stream"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if streamed != batch {
		t.Errorf("-stream output differs from batch:\nbatch:\n%s\nstream:\n%s", batch, streamed)
	}
}

func TestCmdPlansStreamJSON(t *testing.T) {
	// -stream -json emits one JSON object per line; the concatenation must
	// decode to the same entries as the batch -json array, in order.
	out, err := capture(t, func() error {
		return run([]string{"plans", hotelFile, "-client", "c2", "-stream", "-json"})
	})
	if err != nil {
		t.Fatal(err)
	}
	type entry struct {
		Plan   map[string]string `json:"plan"`
		Report struct {
			Verdict string `json:"verdict"`
		} `json:"report"`
	}
	dec := json.NewDecoder(strings.NewReader(out))
	var got []entry
	for dec.More() {
		var e entry
		if err := dec.Decode(&e); err != nil {
			t.Fatalf("decode streamed object %d: %v\n%s", len(got), err, out)
		}
		got = append(got, e)
	}
	batchOut, err := capture(t, func() error {
		return run([]string{"plans", hotelFile, "-client", "c2", "-json"})
	})
	if err != nil {
		t.Fatal(err)
	}
	var want []entry
	if err := json.Unmarshal([]byte(batchOut), &want); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("streamed %d entries, batch has %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Report.Verdict != want[i].Report.Verdict ||
			len(got[i].Plan) != len(want[i].Plan) {
			t.Errorf("entry %d differs: stream %+v, batch %+v", i, got[i], want[i])
		}
		for r, l := range want[i].Plan {
			if got[i].Plan[r] != l {
				t.Errorf("entry %d binds %s to %s, batch to %s", i, r, got[i].Plan[r], l)
			}
		}
	}
}

func TestCmdPlansStats(t *testing.T) {
	// -stats reports the work counters on stderr, keeping stdout intact.
	oldErr := os.Stderr
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stderr = w
	var errBuf bytes.Buffer
	done := make(chan struct{})
	go func() {
		errBuf.ReadFrom(r)
		close(done)
	}()
	out, runErr := capture(t, func() error {
		return run([]string{"plans", hotelFile, "-client", "c2", "-stats"})
	})
	w.Close()
	<-done
	os.Stderr = oldErr
	if runErr != nil {
		t.Fatal(runErr)
	}
	if !strings.Contains(out, "1 valid") {
		t.Errorf("plans output:\n%s", out)
	}
	stderr := errBuf.String()
	for _, want := range []string{"stats: cache", "hit rate", "stats: fused", "states expanded"} {
		if !strings.Contains(stderr, want) {
			t.Errorf("-stats stderr missing %q:\n%s", want, stderr)
		}
	}
}

func TestCmdCheck(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"check", hotelFile, "-client", "c1"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "valid") {
		t.Errorf("check output:\n%s", out)
	}
}

func TestCmdRun(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"run", hotelFile, "-client", "c1", "-seed", "3", "-monitor"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "status: completed") {
		t.Errorf("run output:\n%s", out)
	}
	if !strings.Contains(out, "history of c1:") {
		t.Errorf("run output missing history:\n%s", out)
	}
}

func TestCmdErrors(t *testing.T) {
	cases := [][]string{
		{},
		{"bogus", hotelFile},
		{"parse"},
		{"parse", "no-such-file.susc"},
		{"plans", hotelFile}, // two clients, none picked
		{"check", hotelFile, "-client", "nobody"}, // unknown client
	}
	for _, args := range cases {
		if _, err := capture(t, func() error { return run(args) }); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}

func TestCmdCheckRejectsInvalidPlan(t *testing.T) {
	dir := t.TempDir()
	src, err := os.ReadFile(hotelFile)
	if err != nil {
		t.Fatal(err)
	}
	bad := strings.Replace(string(src), "r3 -> s3", "r3 -> s2", 1)
	path := dir + "/bad.susc"
	if err := os.WriteFile(path, []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = capture(t, func() error { return run([]string{"check", path, "-client", "c1"}) })
	if err == nil || !strings.Contains(err.Error(), "not valid") {
		t.Errorf("err = %v, want plan-not-valid", err)
	}
}

func TestCmdFmtRoundTrip(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"fmt", hotelFile}) })
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := dir + "/fmt.susc"
	if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
		t.Fatal(err)
	}
	out2, err := capture(t, func() error { return run([]string{"fmt", path}) })
	if err != nil {
		t.Fatalf("formatted output failed to re-parse: %v\n%s", err, out)
	}
	if out != out2 {
		t.Errorf("fmt not idempotent")
	}
	// the reformatted file still validates
	if _, err := capture(t, func() error {
		return run([]string{"check", path, "-client", "c1"})
	}); err != nil {
		t.Errorf("reformatted file fails check: %v", err)
	}
}

func TestCmdDot(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"dot", hotelFile, "-policy", "phi"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "digraph") || !strings.Contains(out, "doublecircle") {
		t.Errorf("policy dot output:\n%s", out)
	}
	out, err = capture(t, func() error {
		return run([]string{"dot", hotelFile, "-lts", "br"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "open[r3,0]") {
		t.Errorf("lts dot output misses the nested open:\n%s", out)
	}
	out, err = capture(t, func() error {
		return run([]string{"dot", hotelFile, "-product", "br.r3", "-vs", "s2"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "color=red") {
		t.Errorf("product dot should show the stuck state in red:\n%s", out)
	}
	// error paths
	for _, args := range [][]string{
		{"dot", hotelFile},
		{"dot", hotelFile, "-policy", "zzz"},
		{"dot", hotelFile, "-lts", "zzz"},
		{"dot", hotelFile, "-product", "broken"},
		{"dot", hotelFile, "-product", "br.r3", "-vs", "zzz"},
		{"dot", hotelFile, "-product", "br.zzz", "-vs", "s2"},
	} {
		if _, err := capture(t, func() error { return run(args) }); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}

func TestCmdEffect(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"effect", "../../testdata/client.lam", "-decls", hotelFile})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"type   : unit", "Req!.(CoBo?.Pay! + NoAv?)", "{r1>br,r3>s3}"} {
		if !strings.Contains(out, want) {
			t.Errorf("effect output missing %q:\n%s", want, out)
		}
	}
	// without declarations: type and effect only
	out, err = capture(t, func() error {
		return run([]string{"effect", "../../testdata/client.lam"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "plans") {
		t.Errorf("effect without decls should not classify plans:\n%s", out)
	}
	// an ill-typed program fails
	dir := t.TempDir()
	bad := dir + "/bad.lam"
	if err := os.WriteFile(bad, []byte("(fun x: int . x) ()"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := capture(t, func() error { return run([]string{"effect", bad}) }); err == nil {
		t.Error("ill-typed program should fail")
	}
}

func TestCmdSubstitutable(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"substitutable", hotelFile, "-old", "s1", "-new", "s3"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "EQUIVALENT") {
		t.Errorf("s1/s3 should be equivalent:\n%s", out)
	}
	_, err = capture(t, func() error {
		return run([]string{"substitutable", hotelFile, "-old", "s1", "-new", "s2"})
	})
	if err == nil {
		t.Error("s2 must not substitute s1")
	}
	for _, args := range [][]string{
		{"substitutable", hotelFile},
		{"substitutable", hotelFile, "-old", "zzz", "-new", "s1"},
		{"substitutable", hotelFile, "-old", "s1", "-new", "zzz"},
	} {
		if _, err := capture(t, func() error { return run(args) }); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}

func TestCmdDual(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"dual", hotelFile, "-of", "br.r3"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "dual     : IdC?.(Bok! (+) UnA!)") {
		t.Errorf("dual output:\n%s", out)
	}
	out, err = capture(t, func() error {
		return run([]string{"dual", hotelFile, "-of", "s1"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "dual     : IdC!.(Bok? + UnA?)") {
		t.Errorf("dual of s1:\n%s", out)
	}
	for _, args := range [][]string{
		{"dual", hotelFile},
		{"dual", hotelFile, "-of", "zzz"},
		{"dual", hotelFile, "-of", "br.zzz"},
	} {
		if _, err := capture(t, func() error { return run(args) }); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}

func TestCmdCheckAll(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"checkall", hotelFile}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "network of 2 client(s): valid") {
		t.Errorf("checkall output:\n%s", out)
	}
	// bounded availability still verifies (sessions are sequential enough)
	out, err = capture(t, func() error {
		return run([]string{"checkall", hotelFile, "-cap", "br=1,s3=1,s4=1"})
	})
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	// zero brokers: both clients are stuck at their first open
	_, err = capture(t, func() error {
		return run([]string{"checkall", hotelFile, "-cap", "br=0"})
	})
	if err == nil {
		t.Error("checkall with no brokers should fail")
	}
	// malformed -cap
	for _, bad := range []string{"br", "br=x"} {
		if _, err := capture(t, func() error {
			return run([]string{"checkall", hotelFile, "-cap", bad})
		}); err == nil {
			t.Errorf("-cap %q should fail", bad)
		}
	}
}

func TestCmdJSONOutput(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"check", hotelFile, "-client", "c1", "-json"})
	})
	if err != nil {
		t.Fatal(err)
	}
	var report struct {
		Verdict string `json:"verdict"`
		States  int    `json:"states"`
	}
	if err := json.Unmarshal([]byte(out), &report); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if report.Verdict != "valid" || report.States == 0 {
		t.Errorf("report = %+v", report)
	}
	out, err = capture(t, func() error {
		return run([]string{"plans", hotelFile, "-client", "c1", "-json"})
	})
	if err != nil {
		t.Fatal(err)
	}
	var assessments []struct {
		Plan   map[string]string `json:"plan"`
		Report struct {
			Verdict string `json:"verdict"`
		} `json:"report"`
	}
	if err := json.Unmarshal([]byte(out), &assessments); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	validCount := 0
	for _, a := range assessments {
		if a.Report.Verdict == "valid" {
			validCount++
			if a.Plan["r3"] != "s3" {
				t.Errorf("valid plan = %v", a.Plan)
			}
		}
	}
	if validCount != 1 {
		t.Errorf("valid plans in JSON = %d", validCount)
	}
}

func TestCmdRunAll(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"run", hotelFile, "-all", "-seed", "5", "-monitor"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"status: completed", "history of c1:", "history of c2:", "[c2]"} {
		if !strings.Contains(out, want) {
			t.Errorf("run -all output missing %q:\n%s", want, out)
		}
	}
	// with zero broker replicas both clients starve
	out, err = capture(t, func() error {
		return run([]string{"run", hotelFile, "-all", "-cap", "br=0"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "status: deadlock") {
		t.Errorf("capacity-starved run should deadlock:\n%s", out)
	}
	// malformed cap on run
	if _, err := capture(t, func() error {
		return run([]string{"run", hotelFile, "-all", "-cap", "oops"})
	}); err == nil {
		t.Error("malformed -cap should fail")
	}
}

func TestUsageListsAllCommands(t *testing.T) {
	err := run(nil)
	if err == nil {
		t.Fatal("run with no args succeeded, want usage error")
	}
	for _, cmd := range []string{"lint", "checkall", "effect", "substitutable", "dual"} {
		if !strings.Contains(err.Error(), cmd) {
			t.Errorf("usage string omits %q: %v", cmd, err)
		}
	}
}

func TestCmdLint(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"lint", hotelFile}) })
	if err != nil {
		t.Fatalf("warnings must not fail the command: %v", err)
	}
	if !strings.Contains(out, "[SUSC005]") || !strings.Contains(out, hotelFile+":22:9:") {
		t.Errorf("lint output missing the positioned s2 finding:\n%s", out)
	}
}

func TestCmdLintSeverityThreshold(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"lint", hotelFile, "-severity", "error"}) })
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out) != "" {
		t.Errorf("at -severity error hotel.susc should be clean, got:\n%s", out)
	}
	if _, err := capture(t, func() error { return run([]string{"lint", hotelFile, "-severity", "fatal"}) }); err == nil {
		t.Error("unknown severity accepted")
	}
}

func TestCmdLintErrorsFail(t *testing.T) {
	bad := "../../internal/lint/testdata/susc006_unmatched.susc"
	out, err := capture(t, func() error { return run([]string{"lint", bad}) })
	if err == nil {
		t.Fatalf("error findings must yield a non-zero exit, output:\n%s", out)
	}
	if !strings.Contains(out, "[SUSC006]") {
		t.Errorf("missing SUSC006 finding:\n%s", out)
	}
}

func TestCmdLintJSON(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"lint", hotelFile, "-json"}) })
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 1 {
		t.Fatalf("want one NDJSON line, got %d:\n%s", len(lines), out)
	}
	var entry struct {
		File     string `json:"file"`
		Code     string `json:"code"`
		Severity string `json:"severity"`
		Span     struct {
			Start struct{ Line, Col int }
		} `json:"span"`
		Message string `json:"message"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &entry); err != nil {
		t.Fatalf("invalid NDJSON: %v\n%s", err, lines[0])
	}
	if entry.File != hotelFile || entry.Code != "SUSC005" || entry.Severity != "warning" ||
		entry.Span.Start.Line != 22 || entry.Span.Start.Col != 9 || entry.Message == "" {
		t.Errorf("unexpected NDJSON entry: %+v", entry)
	}
}

func TestCmdLintParseError(t *testing.T) {
	bad := "../../internal/lint/testdata/parse_error.susc"
	out, err := capture(t, func() error { return run([]string{"lint", bad}) })
	if err == nil {
		t.Fatal("syntax errors must yield a non-zero exit")
	}
	if !strings.Contains(out, "[SUSC000]") || !strings.Contains(out, ":3:") {
		t.Errorf("want a positioned SUSC000 finding:\n%s", out)
	}
}

var updateExplain = flag.Bool("update", false, "rewrite .explain.golden files")

// TestCmdExplainGolden pins the text output of `susc explain` on every
// semantic fixture byte-for-byte: witness rendering is public, stable
// output. Run with -update to regenerate.
func TestCmdExplainGolden(t *testing.T) {
	matches, err := filepath.Glob("../../internal/lint/testdata/semantic/*.susc")
	if err != nil || len(matches) == 0 {
		t.Fatalf("no semantic fixtures: %v", err)
	}
	for _, path := range matches {
		t.Run(filepath.Base(path), func(t *testing.T) {
			// Error-severity findings make the command fail by design; the
			// output is still the object under test.
			out, _ := capture(t, func() error { return run([]string{"explain", path}) })
			golden := path + ".explain.golden"
			if *updateExplain {
				if err := os.WriteFile(golden, []byte(out), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run `go test ./cmd/susc -run TestCmdExplainGolden -update`): %v", err)
			}
			if out != string(want) {
				t.Errorf("explain output mismatch\n--- got ---\n%s--- want ---\n%s", out, want)
			}
		})
	}
}

// TestCmdExplainClean checks that a witness-free specification yields no
// output and a zero exit status (the CI smoke contract).
func TestCmdExplainClean(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"explain", "../../internal/lint/testdata/semantic/clean.susc"})
	})
	if err != nil {
		t.Fatalf("explain on a clean file failed: %v", err)
	}
	if out != "" {
		t.Errorf("explain on a clean file printed output:\n%s", out)
	}
}

// TestCmdExplainCodeFilter checks -code keeps only the requested findings.
func TestCmdExplainCodeFilter(t *testing.T) {
	fix := "../../internal/lint/testdata/semantic/susc015_deadautomaton.susc"
	out, err := capture(t, func() error { return run([]string{"explain", fix, "-code", "SUSC015"}) })
	if err != nil {
		t.Fatalf("info findings must not fail the command: %v", err)
	}
	if !strings.Contains(out, "[SUSC015]") || strings.Contains(out, "[SUSC011]") {
		t.Errorf("-code SUSC015 output wrong:\n%s", out)
	}
	out, err = capture(t, func() error { return run([]string{"explain", fix, "-code", "SUSC011"}) })
	if err != nil || out != "" {
		t.Errorf("-code SUSC011 should match nothing here, got err=%v out:\n%s", err, out)
	}
}

// TestCmdExplainJSON checks the NDJSON stream carries the witness.
func TestCmdExplainJSON(t *testing.T) {
	fix := "../../internal/lint/testdata/semantic/susc011_violable.susc"
	out, _ := capture(t, func() error { return run([]string{"explain", fix, "-json"}) })
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 1 {
		t.Fatalf("want one NDJSON line, got %d:\n%s", len(lines), out)
	}
	var entry struct {
		File    string `json:"file"`
		Code    string `json:"code"`
		Witness struct {
			Kind  string `json:"kind"`
			Steps []struct {
				Label string `json:"label"`
				State string `json:"state"`
			} `json:"steps"`
		} `json:"witness"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &entry); err != nil {
		t.Fatalf("invalid NDJSON: %v\n%s", err, lines[0])
	}
	if entry.Code != "SUSC011" || entry.Witness.Kind != "violation" || len(entry.Witness.Steps) != 3 ||
		entry.Witness.Steps[2].State != "qv" {
		t.Errorf("unexpected NDJSON entry: %+v", entry)
	}
}

// TestCmdExplainDot checks -wdot emits one digraph per witness.
func TestCmdExplainDot(t *testing.T) {
	fix := "../../internal/lint/testdata/semantic/susc014_subsumed.susc"
	out, err := capture(t, func() error { return run([]string{"explain", fix, "-wdot"}) })
	if err != nil {
		t.Fatalf("warning findings must not fail the command: %v", err)
	}
	if !strings.Contains(out, `digraph "SUSC014_0"`) || !strings.Contains(out, "doublecircle") {
		t.Errorf("-wdot output is not a digraph:\n%s", out)
	}
}
