package main

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"susc/internal/budget"
	"susc/internal/faultinject"
)

// TestExitCodeMapping pins the exit-code protocol: findings are 1,
// isolated internal errors 2, budget exhaustion or interruption 3.
func TestExitCodeMapping(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{fmt.Errorf("plan is not valid"), 1},
		{&budget.InternalError{Unit: "plan k", Value: "boom"}, 2},
		{fmt.Errorf("wrapped: %w", &budget.InternalError{Unit: "u", Value: 1}), 2},
		{&budget.ExhaustedError{Reason: budget.StateLimit}, 3},
		{&budget.ExhaustedError{Reason: budget.Cancelled}, 3},
		{fmt.Errorf("wrapped: %w", &budget.ExhaustedError{Reason: budget.DeadlineExceeded}), 3},
	}
	for _, tc := range cases {
		if got := exitCode(tc.err); got != tc.want {
			t.Errorf("exitCode(%v) = %d, want %d", tc.err, got, tc.want)
		}
	}
	// Internal error outranks exhaustion when an error is both (wrapped
	// chains put the internal error first).
	both := fmt.Errorf("%w after %w",
		&budget.InternalError{Unit: "u", Value: 1},
		&budget.ExhaustedError{Reason: budget.StateLimit})
	if got := exitCode(both); got != 2 {
		t.Errorf("internal+exhausted = %d, want 2", got)
	}
}

// TestRunBudgetExhaustedExit3: a tiny -max-states run still prints the
// partial report and returns the typed exhaustion error (exit 3).
func TestRunBudgetExhaustedExit3(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"check", hotelFile, "-client", "c1", "-max-states", "3"})
	})
	var ee *budget.ExhaustedError
	if !errors.As(err, &ee) {
		t.Fatalf("err = %v, want *budget.ExhaustedError", err)
	}
	if !strings.Contains(out, "unknown") {
		t.Fatalf("partial report must still print, got %q", out)
	}
}

// TestRunPlansBudgetExhaustedExit3: same protocol for plan synthesis —
// the flushed partial assessments precede the typed error.
func TestRunPlansBudgetExhaustedExit3(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"plans", hotelFile, "-client", "c1", "-max-states", "5"})
	})
	var ee *budget.ExhaustedError
	if !errors.As(err, &ee) {
		t.Fatalf("err = %v, want *budget.ExhaustedError", err)
	}
	if !strings.Contains(out, "plan(s)") {
		t.Fatalf("partial summary must still print, got %q", out)
	}
}

// TestRunInternalErrorExit2: an injected worker panic surfaces as the
// typed internal error (exit 2) — after the surviving plans printed.
func TestRunInternalErrorExit2(t *testing.T) {
	restore := faultinject.Set(faultinject.PanicOnce(faultinject.PlansWorker, "", "injected"))
	defer restore()
	out, err := capture(t, func() error {
		return run([]string{"plans", hotelFile, "-client", "c1"})
	})
	var ie *budget.InternalError
	if !errors.As(err, &ie) {
		t.Fatalf("err = %v, want *budget.InternalError", err)
	}
	if ie.Unit == "" {
		t.Fatal("the internal error must carry the repro unit")
	}
	if !strings.Contains(out, "plan(s)") {
		t.Fatalf("surviving assessments must still print, got %q", out)
	}
}

// TestRunCheckAllBudgetExhaustedExit3: the network checker degrades the
// same way.
func TestRunCheckAllBudgetExhaustedExit3(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"checkall", hotelFile, "-max-states", "3"})
	})
	var ee *budget.ExhaustedError
	if !errors.As(err, &ee) {
		t.Fatalf("err = %v, want *budget.ExhaustedError", err)
	}
	if !strings.Contains(out, "unknown") {
		t.Fatalf("partial network report must still print, got %q", out)
	}
}

const auditFixtures = "../../internal/lint/testdata/audit"

// TestRunAuditFindingsExit1: warning-level audit findings make `susc
// audit` return a plain error (exit 1), with the finding and its
// coverage table on stdout.
func TestRunAuditFindingsExit1(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"audit", auditFixtures + "/susc017_unguarded.susc"})
	})
	if err == nil || exitCode(err) != 1 {
		t.Fatalf("err = %v (exit %d), want findings error (exit 1)", err, exitCode(err))
	}
	if !strings.Contains(out, "SUSC017") || !strings.Contains(out, "guarded by") {
		t.Fatalf("finding and coverage table must print, got %q", out)
	}
}

// TestRunAuditInfoFindingsExit0: info-level findings (SUSC020) report
// but do not fail the run.
func TestRunAuditInfoFindingsExit0(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"audit", auditFixtures + "/susc020_deadpolicy.susc"})
	})
	if err != nil {
		t.Fatalf("err = %v, want success (info findings only)", err)
	}
	if !strings.Contains(out, "SUSC020") {
		t.Fatalf("info finding must still print, got %q", out)
	}
}

// TestRunAuditBudgetExhaustedExit3: a starved audit reports itself
// incomplete and returns the typed exhaustion error (exit 3).
func TestRunAuditBudgetExhaustedExit3(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"audit", hotelFile, "-max-states", "3"})
	})
	var ee *budget.ExhaustedError
	if !errors.As(err, &ee) {
		t.Fatalf("err = %v, want *budget.ExhaustedError", err)
	}
	if !strings.Contains(out, "audit incomplete") {
		t.Fatalf("the partial audit must announce incompleteness, got %q", out)
	}
}

// TestRunCheckAllAuditFindingsExit1: checkall folds the declared-plan
// audit into its gate — a network that verifies fine but carries an
// unguarded critical event exits 1.
func TestRunCheckAllAuditFindingsExit1(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"checkall", auditFixtures + "/susc017_unguarded.susc"})
	})
	if err == nil || exitCode(err) != 1 {
		t.Fatalf("err = %v (exit %d), want audit-findings error (exit 1)", err, exitCode(err))
	}
	if !strings.Contains(err.Error(), "audit") {
		t.Fatalf("the error must name the audit, got %v", err)
	}
	if !strings.Contains(out, "valid") {
		t.Fatalf("the verification verdicts must still print, got %q", out)
	}
}

// TestRunCheckAllAuditCleanExit0: the audit gate is invisible on a
// network whose critical events are guarded under the declared plans.
func TestRunCheckAllAuditCleanExit0(t *testing.T) {
	for _, file := range []string{auditFixtures + "/clean.susc", hotelFile} {
		if _, err := capture(t, func() error {
			return run([]string{"checkall", file})
		}); err != nil {
			t.Fatalf("checkall %s = %v, want success", file, err)
		}
	}
}

// TestRunRoomyBudgetIsInvisible: generous limits change nothing — the
// commands succeed exactly as without flags.
func TestRunRoomyBudgetIsInvisible(t *testing.T) {
	for _, args := range [][]string{
		{"check", hotelFile, "-client", "c1", "-max-states", "100000", "-timeout", "1m"},
		{"checkall", hotelFile, "-max-states", "100000"},
		{"plans", hotelFile, "-client", "c1", "-max-states", "100000"},
	} {
		if _, err := capture(t, func() error { return run(args) }); err != nil {
			t.Fatalf("run(%v) = %v, want success", args, err)
		}
	}
}
