// Command susc is the command-line front end of the secure-and-unfailing
// services toolkit. It operates on source files in the surface syntax of
// internal/parser (policies, instances, services, clients) and exposes the
// paper's analyses:
//
//	susc parse      FILE                 parse and list the declarations
//	susc project    FILE                 print the contract H! of every service
//	susc compliance FILE                 compliance matrix: request bodies vs services
//	susc validity   FILE                 validity of every service under every policy
//	susc plans      FILE -client NAME    enumerate and classify every plan
//	susc check      FILE -client NAME    validate the client's declared plan
//	susc run        FILE -client NAME    simulate the network under the declared plan
//	susc fmt        FILE                 reformat to canonical surface syntax
//	susc lint       FILE                 static analysis: positioned diagnostics
//	                                     (dead services, vacuous policies, …);
//	                                     -json (NDJSON), -severity LEVEL, -stats
//	susc explain    FILE                 semantic analysis with counterexamples:
//	                                     model-check every declaration and print a
//	                                     minimal witness trace per finding
//	                                     (SUSC011–015); -code SUSCnnn, -json, -dot
//	susc dot        FILE -policy P | -lts NAME | -product OWNER.REQ -vs LOC
//	                                     render an artifact as Graphviz dot
//	susc effect     FILE.lam [-decls FILE.susc]
//	                                     infer the type and effect of a λ-program;
//	                                     with declarations, also classify its plans
//	susc substitutable FILE -old LOC -new LOC
//	                                     can -new replace -old without breaking clients?
//	susc dual       FILE -of NAME[.REQ]  print the canonical dual contract
//	susc checkall   FILE [-cap loc=n,..] validate all declared clients at once,
//	                                     optionally under bounded availability;
//	                                     also runs the declared-plan flow audit
//	susc audit      FILE                 whole-network security-flow audit: annotate
//	                                     every reachable event with its active
//	                                     framing set across all valid plans and
//	                                     report coverage findings (SUSC017–021)
//	                                     plus a per-plan coverage table;
//	                                     -plan (declared plans only), -json,
//	                                     -severity LEVEL, -stats, -wdot
//	susc serve                           long-running verification service: POST a
//	                                     spec to /v1/{lint,audit,check,checkall,plans}
//	                                     and stream NDJSON results; -addr, -cache,
//	                                     -max-inflight, -max-timeout, -max-states,
//	                                     -max-edges, -grace, -ready-file,
//	                                     -webhook-secret
//
// check, checkall and plans accept -json for machine-readable reports.
// plans also accepts -stream (print each assessment as the fused engine
// produces it; with -json, one object per line) and -stats (memo-cache and
// fused-engine work counters on stderr).
//
// plans, check, checkall, lint and audit accept -cache DIR: verdicts
// persist in DIR/susc.store, keyed by the content hash of their dependency
// cone, and replay from disk on the next run (incremental re-verification;
// -stats adds the per-kind disk-tier counters).
//
// The exploration commands — plans, check, checkall, lint, explain,
// audit — accept -timeout, -max-states and -max-edges, bounding the state-space
// work; they also install a SIGINT/SIGTERM handler that cancels the
// exploration and still prints the partial results. Verdicts decided
// before the cutoff stand; the rest degrade to "unknown". Exit codes
// distinguish the outcomes: 0 success, 1 findings (invalid plan, lint
// errors), 2 internal error (an isolated worker panic), 3 budget
// exhausted or interrupted.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strings"
	"syscall"
	"time"

	"susc/internal/budget"
	"susc/internal/compliance"
	"susc/internal/contract"
	"susc/internal/engine"
	"susc/internal/hexpr"
	"susc/internal/lambda"
	"susc/internal/lint"
	"susc/internal/lts"
	"susc/internal/memo"
	"susc/internal/network"
	"susc/internal/parser"
	"susc/internal/plans"
	"susc/internal/server"
	"susc/internal/store"
	"susc/internal/valid"
	"susc/internal/verify"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "susc:", err)
		os.Exit(exitCode(err))
	}
}

// exitCode maps an error to the CLI's exit-code protocol: 2 for an
// internal error (an isolated worker panic — the message carries the
// repro unit), 3 for a budget cutoff (state/edge limit, -timeout,
// SIGINT/SIGTERM), 1 for ordinary findings and failures. Internal errors
// outrank budget cutoffs, which outrank findings. The translation lives
// in engine.ExitCode so the server reports the same codes.
func exitCode(err error) int {
	return engine.ExitCode(err)
}

func run(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: susc <parse|fmt|lint|explain|audit|project|compliance|validity|plans|check|checkall|run|dot|effect|substitutable|dual> FILE [flags], or susc serve [flags]")
	}
	cmd := args[0]
	if cmd == "serve" {
		// serve takes no FILE; its flags parse separately.
		return cmdServe(args[1:])
	}
	switch cmd {
	case "parse", "fmt", "lint", "explain", "audit", "project", "compliance", "validity", "plans", "check", "run",
		"dot", "effect", "substitutable", "dual", "checkall":
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	clientName := fs.String("client", "", "client declaration to operate on")
	seed := fs.Int64("seed", 0, "scheduler seed for run (0 = deterministic)")
	steps := fs.Int("steps", network.DefaultMaxSteps, "step budget for run")
	monitored := fs.Bool("monitor", false, "run with the run-time validity monitor")
	prune := fs.Bool("prune", true, "prune non-compliant bindings during plan synthesis")
	dotPolicy := fs.String("policy", "", "dot: render this policy template")
	dotLTS := fs.String("lts", "", "dot: render the LTS of this service or client")
	dotProduct := fs.String("product", "", "dot: render the product of this request (client.request or service.request)")
	dotVs := fs.String("vs", "", "dot: the service the product is built against")
	decls := fs.String("decls", "", "effect: declarations file resolving policy aliases and services")
	oldLoc := fs.String("old", "", "substitutable: the service being replaced")
	newLoc := fs.String("new", "", "substitutable: the candidate replacement")
	dualOf := fs.String("of", "", "dual: service, client, or OWNER.REQUEST to dualise")
	capSpec := fs.String("cap", "", "checkall: bounded availability, e.g. \"br=2,s3=1\"")
	planOnly := fs.Bool("plan", false,
		"audit: audit only each client's declared plan instead of the whole valid-plan family")
	jsonOut := fs.Bool("json", false, "check/checkall/plans/lint: JSON output (lint: NDJSON, one diagnostic per line)")
	stream := fs.Bool("stream", false,
		"plans: print each assessment as it is produced (with -json, one object per line)")
	stats := fs.Bool("stats", false,
		"plans/check/checkall/lint: print per-engine work counters on stderr")
	cacheDir := fs.String("cache", "",
		"plans/check/checkall/lint: persist verdicts in DIR/susc.store and reuse them across runs (incremental re-verification)")
	severity := fs.String("severity", "info",
		"lint: report findings at or above this severity (info, warning, error)")
	codeFilter := fs.String("code", "",
		"explain: only report findings with this diagnostic code (e.g. SUSC011)")
	witnessDot := fs.Bool("wdot", false,
		"explain: render each witness as a Graphviz digraph instead of text")
	runAll := fs.Bool("all", false, "run: simulate all declared clients concurrently")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0),
		"plans/effect: validate candidate plans with this many goroutines")
	timeout := fs.Duration("timeout", 0,
		"plans/check/checkall/lint/explain: wall-clock budget (0 = none)")
	maxStates := fs.Int64("max-states", 0,
		"plans/check/checkall/lint/explain: state budget for the exploration (0 = unlimited)")
	maxEdges := fs.Int64("max-edges", 0,
		"plans/check/checkall/lint/explain: edge budget for the exploration (0 = unlimited)")
	if len(args) < 2 {
		return fmt.Errorf("usage: susc %s FILE [flags]", cmd)
	}
	path := args[1]
	if err := fs.Parse(args[2:]); err != nil {
		return err
	}
	// Only the budget-aware exploration commands trap SIGINT/SIGTERM: a
	// first signal cancels the budget so partial results still print; a
	// second signal falls back to the default handler and kills the
	// process. Interactive commands (run, parse, …) keep ^C fatal.
	var bud *budget.Budget
	switch cmd {
	case "plans", "check", "checkall", "lint", "explain", "audit":
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		bud = budget.New(ctx, budget.Limits{
			MaxStates: *maxStates,
			MaxEdges:  *maxEdges,
			Timeout:   *timeout,
		})
	}
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if cmd == "effect" {
		return cmdEffect(string(src), *decls, *workers)
	}
	if cmd == "lint" {
		// lint parses leniently itself, so one run can report several
		// independent problems (and parse errors become diagnostics).
		return cmdLint(path, string(src), *jsonOut, *severity, *stats, *cacheDir, bud)
	}
	if cmd == "explain" {
		// explain also parses leniently: the semantic analyzers skip what
		// does not parse and still explain the declarations that do.
		return cmdExplain(path, string(src), *codeFilter, *jsonOut, *witnessDot, bud)
	}
	if cmd == "audit" {
		// audit parses leniently too: a parse error comes back as one
		// positioned SUSC000 finding instead of a crash.
		return cmdAudit(path, string(src), *jsonOut, *severity, *stats, *witnessDot, *planOnly, *cacheDir, bud)
	}
	f, err := parser.ParseFile(string(src))
	if err != nil {
		return err
	}
	switch cmd {
	case "parse":
		return cmdParse(f)
	case "fmt":
		fmt.Print(parser.Format(f))
		return nil
	case "dot":
		return cmdDot(f, *dotPolicy, *dotLTS, *dotProduct, *dotVs)
	case "project":
		return cmdProject(f)
	case "compliance":
		return cmdCompliance(f)
	case "validity":
		return cmdValidity(f)
	case "plans":
		return cmdPlans(f, *clientName, *prune, *jsonOut, *stream, *stats, *workers, *cacheDir, bud)
	case "check":
		return cmdCheck(f, *clientName, *jsonOut, *stats, *cacheDir, bud)
	case "checkall":
		return cmdCheckAll(f, string(src), *capSpec, *jsonOut, *stats, *cacheDir, bud)
	case "run":
		return cmdRun(f, *clientName, *seed, *steps, *monitored, *runAll, *capSpec)
	case "substitutable":
		return cmdSubstitutable(f, *oldLoc, *newLoc)
	case "dual":
		return cmdDual(f, *dualOf)
	}
	return nil
}

// cmdServe boots the long-running verification service: one warm
// engine session behind an HTTP front end that answers POSTed specs
// with streamed NDJSON results (see internal/server for the protocol).
// Startup failures — an unparseable or occupied address, a store
// already locked by another process — return an error (exit 1).
// SIGINT/SIGTERM starts a graceful drain: no new requests are admitted,
// in-flight ones get -grace to finish (then their budgets are cancelled
// so they flush partial Unknown results), and a clean drain exits 0.
// serveOpts holds the parsed serve flags; serveFlagSet registers them
// so the docs drift test can enumerate every flag the mode accepts.
type serveOpts struct {
	addr, cacheDir, readyFile, webhookSecret *string
	maxInflight                              *int
	maxStates, maxEdges                      *int64
	maxTimeout, grace                        *time.Duration
}

func serveFlagSet() (*flag.FlagSet, *serveOpts) {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	o := &serveOpts{
		addr: fs.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)"),
		cacheDir: fs.String("cache", "",
			"persist verdicts in DIR/susc.store shared by every request (advisory-locked against other processes)"),
		maxInflight: fs.Int("max-inflight", 4,
			"admission control: maximum concurrently verifying requests; excess is shed with 429"),
		maxTimeout: fs.Duration("max-timeout", 0,
			"clamp for per-request wall-clock budgets (0 = unlimited)"),
		maxStates: fs.Int64("max-states", 0, "clamp for per-request state budgets (0 = unlimited)"),
		maxEdges:  fs.Int64("max-edges", 0, "clamp for per-request edge budgets (0 = unlimited)"),
		grace: fs.Duration("grace", 5*time.Second,
			"drain grace: how long in-flight requests may finish after SIGINT/SIGTERM"),
		readyFile: fs.String("ready-file", "",
			"write the bound address to this file once listening (for scripts using -addr :0)"),
		webhookSecret: fs.String("webhook-secret", "",
			"HMAC key for signed result callbacks (default $SUSC_WEBHOOK_SECRET; empty disables webhooks)"),
	}
	return fs, o
}

func cmdServe(args []string) error {
	fs, o := serveFlagSet()
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("serve takes no FILE; POST specs to the running server instead")
	}
	secret := *o.webhookSecret
	if secret == "" {
		secret = os.Getenv("SUSC_WEBHOOK_SECRET")
	}
	srv, err := server.New(server.Config{
		CacheDir:      *o.cacheDir,
		MaxInFlight:   *o.maxInflight,
		MaxTimeout:    *o.maxTimeout,
		MaxStates:     *o.maxStates,
		MaxEdges:      *o.maxEdges,
		WebhookSecret: []byte(secret),
	})
	if err != nil {
		return err
	}
	// Signals are caught before the ready-file appears, so a supervisor
	// that waits for it can immediately send SIGTERM and still get a
	// clean drain.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ln, err := net.Listen("tcp", *o.addr)
	if err != nil {
		srv.Shutdown(time.Second)
		return err
	}
	if *o.readyFile != "" {
		if werr := os.WriteFile(*o.readyFile, []byte(ln.Addr().String()+"\n"), 0o644); werr != nil {
			ln.Close()
			srv.Shutdown(time.Second)
			return werr
		}
	}
	fmt.Fprintf(os.Stderr, "serve: listening on %s\n", ln.Addr())
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		// The listener died on its own; the drain below only cleans up.
		srv.Shutdown(time.Second)
		return err
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the default way
	fmt.Fprintf(os.Stderr, "serve: draining (grace %v)\n", *o.grace)
	if err := srv.Shutdown(*o.grace); err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "serve: drained")
	return nil
}

// printStoreStats reports the disk-tier counters on stderr: the overall
// line plus one line per record kind that saw traffic (CI keys on the
// per-kind lines to gate incremental recompute fractions).
func printStoreStats(enabled bool, disk *store.Store) {
	if !enabled || disk == nil {
		return
	}
	st := disk.Stats()
	fmt.Fprintf(os.Stderr,
		"stats: store %d hits, %d misses (%.1f%% hit rate), %d write-backs, %d entries, ~%d bytes, opened in %v (%d records replayed)\n",
		st.Hits(), st.Misses(), st.HitRate()*100, st.Writebacks(),
		st.Entries(), st.Bytes(), st.OpenTime, st.Replayed)
	if st.HealedBytes > 0 {
		fmt.Fprintf(os.Stderr, "stats: store healed a torn tail of %d byte(s) on open\n", st.HealedBytes)
	}
	if st.Reset {
		fmt.Fprintln(os.Stderr, "stats: store reset on open (engine fingerprint or format version changed)")
	}
	for _, k := range store.Kinds() {
		t := st.PerKind[k]
		if t.Hits+t.Misses+t.Writebacks == 0 {
			continue
		}
		fmt.Fprintf(os.Stderr, "stats: store/%s %d hits, %d misses, %d write-backs, %d entries, ~%d bytes\n",
			store.KindName(k), t.Hits, t.Misses, t.Writebacks, t.Entries, t.Bytes)
	}
}

// cmdLint runs the static-analysis suite over a specification file and
// prints positioned diagnostics: text ("file:line:col: severity: message
// [CODE]") or, with -json, NDJSON with one diagnostic object per line.
// The exit status is non-zero iff any error-severity finding is reported.
func cmdLint(path, src string, jsonOut bool, severity string, stats bool, cacheDir string, bud *budget.Budget) error {
	minSev, err := lint.ParseSeverity(severity)
	if err != nil {
		return err
	}
	sess, err := engine.Open(cacheDir)
	if err != nil {
		return err
	}
	defer sess.Close()
	opts := lint.Options{MinSeverity: minSev, Budget: bud}
	if stats {
		opts.Stats = &lint.Stats{}
	}
	diags := sess.Lint(src, opts)
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		for _, d := range diags {
			if err := enc.Encode(engine.LintEntry{File: path, Diagnostic: d}); err != nil {
				return err
			}
		}
	} else {
		for _, d := range diags {
			fmt.Printf("%s:%s\n", path, d)
			for _, r := range d.Related {
				fmt.Printf("\t%s:%s: %s\n", path, r.Span, r.Message)
			}
		}
	}
	counts := map[lint.Severity]int{}
	for _, d := range diags {
		counts[d.Severity]++
	}
	if stats {
		for _, a := range opts.Stats.Analyzers {
			fmt.Fprintf(os.Stderr, "stats: lint %-14s %d finding(s) in %v\n", a.Name, a.Findings, a.Duration)
		}
		st := sess.Cache.Stats()
		fmt.Fprintf(os.Stderr, "stats: cache %d hits, %d misses (%.1f%% hit rate), %d entries, ~%d bytes\n",
			st.Hits(), st.Misses(), st.HitRate()*100, st.Entries(), st.ApproxBytes)
		printStoreStats(true, sess.Disk)
	}
	if !jsonOut && len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "lint: %d finding(s): %d error(s), %d warning(s), %d info\n",
			len(diags), counts[lint.Error], counts[lint.Warning], counts[lint.Info])
	}
	// Exit-code protocol: an isolated analyzer panic (a SUSC016 "failed"
	// diagnostic) outranks a budget cutoff, which outranks ordinary
	// findings.
	return engine.LintErr(diags, bud)
}

// cmdExplain runs the full analyzer suite — the default syntactic
// analyzers plus the semantic model checkers (SUSC011–015) — and reports
// the findings that carry a counterexample witness, each with its minimal
// trace printed step by step and anchored at file:line:col. -code keeps
// one diagnostic code, -json emits NDJSON (witness included), -wdot
// renders each witness as a Graphviz digraph. The exit status is non-zero
// iff any error-severity witness is reported.
func cmdExplain(path, src, code string, jsonOut, wdot bool, bud *budget.Budget) error {
	diags := lint.Source(src, lint.Options{Analyzers: lint.AllAnalyzers(), Cache: memo.New(), Budget: bud})
	var kept []lint.Diagnostic
	for _, d := range diags {
		if d.Witness == nil {
			continue
		}
		if code != "" && d.Code != code {
			continue
		}
		kept = append(kept, d)
	}
	errs := 0
	switch {
	case jsonOut:
		enc := json.NewEncoder(os.Stdout)
		for _, d := range kept {
			if err := enc.Encode(engine.LintEntry{File: path, Diagnostic: d}); err != nil {
				return err
			}
		}
	case wdot:
		for i, d := range kept {
			fmt.Print(d.Witness.DOT(fmt.Sprintf("%s_%d", d.Code, i)))
		}
	default:
		for _, d := range kept {
			fmt.Printf("%s:%s\n", path, d)
			for _, r := range d.Related {
				fmt.Printf("\t%s:%s: %s\n", path, r.Span, r.Message)
			}
			fmt.Print(d.Witness.Render(path))
		}
	}
	for _, d := range kept {
		if d.Severity == lint.Error {
			errs++
		}
	}
	if !jsonOut && !wdot && len(kept) > 0 {
		fmt.Fprintf(os.Stderr, "explain: %d finding(s) with witnesses, %d error(s)\n", len(kept), errs)
	}
	for _, d := range diags {
		if d.Code == lint.CodeInternalError && !strings.HasPrefix(d.Message, "analysis stopped") {
			return &budget.InternalError{Unit: "explain", Value: d.Message}
		}
	}
	if e := bud.Exhausted(); e != nil {
		return e
	}
	if errs > 0 {
		return fmt.Errorf("explain: %d error(s)", errs)
	}
	return nil
}

// cmdAudit runs the whole-network security-flow audit (SUSC017–021): an
// abstract interpretation of every valid plan of every client annotating
// each reachable event occurrence with its active-framing set, then the
// coverage analyzers over the result. Text output prints the findings
// (with their witness traces) followed by the per-client, per-plan
// "event × guarding policies" coverage tables; -json emits NDJSON — one
// diagnostic object per line, then one coverage object per client. -plan
// restricts the audit to each client's declared plan (the checkall mode);
// -wdot renders the witnesses as Graphviz digraphs instead. The exit
// status is 1 when any warning-or-worse finding is reported, 2 on an
// isolated analyzer panic, 3 on budget exhaustion.
func cmdAudit(path, src string, jsonOut bool, severity string, stats, wdot, planOnly bool, cacheDir string, bud *budget.Budget) error {
	minSev, err := lint.ParseSeverity(severity)
	if err != nil {
		return err
	}
	sess, err := engine.Open(cacheDir)
	if err != nil {
		return err
	}
	defer sess.Close()
	opts := lint.Options{
		MinSeverity:       minSev,
		Budget:            bud,
		AuditDeclaredOnly: planOnly,
	}
	if stats {
		opts.Stats = &lint.Stats{}
	}
	res := sess.Audit(src, opts)
	diags := res.Diagnostics
	switch {
	case jsonOut:
		enc := json.NewEncoder(os.Stdout)
		for _, d := range diags {
			if err := enc.Encode(engine.LintEntry{File: path, Diagnostic: d}); err != nil {
				return err
			}
		}
		for _, cc := range res.Coverage {
			if err := enc.Encode(engine.CoverageEntry{File: path, Coverage: cc}); err != nil {
				return err
			}
		}
	case wdot:
		for i, d := range diags {
			if d.Witness == nil {
				continue
			}
			fmt.Print(d.Witness.DOT(fmt.Sprintf("%s_%d", d.Code, i)))
		}
	default:
		for _, d := range diags {
			fmt.Printf("%s:%s\n", path, d)
			for _, r := range d.Related {
				fmt.Printf("\t%s:%s: %s\n", path, r.Span, r.Message)
			}
			if d.Witness != nil {
				fmt.Print(d.Witness.Render(path))
			}
		}
		fmt.Print(res.RenderCoverage())
		if !res.Complete {
			fmt.Println("audit incomplete: some plan families were skipped, capped or cut off; the universally quantified codes (SUSC017/018/020) stayed silent")
		}
	}
	if stats {
		for _, a := range opts.Stats.Analyzers {
			fmt.Fprintf(os.Stderr, "stats: audit %-14s %d finding(s) in %v\n", a.Name, a.Findings, a.Duration)
		}
		st := sess.Cache.Stats()
		fmt.Fprintf(os.Stderr, "stats: cache %d hits, %d misses (%.1f%% hit rate), %d entries, ~%d bytes\n",
			st.Hits(), st.Misses(), st.HitRate()*100, st.Entries(), st.ApproxBytes)
		printStoreStats(true, sess.Disk)
	}
	findings := 0
	for _, d := range diags {
		if d.Severity >= lint.Warning && d.Code != lint.CodeInternalError {
			findings++
		}
	}
	if !jsonOut && len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "audit: %d finding(s), %d at warning or above\n", len(diags), findings)
	}
	return engine.AuditErr(res, bud)
}

// cmdSubstitutable decides whether -new can replace -old in the repository
// without breaking any compliant client.
func cmdSubstitutable(f *parser.File, oldName, newName string) error {
	if oldName == "" || newName == "" {
		return fmt.Errorf("substitutable wants -old and -new services")
	}
	oldSvc, ok := f.Repo[hexpr.Location(oldName)]
	if !ok {
		return fmt.Errorf("no service %q", oldName)
	}
	newSvc, ok := f.Repo[hexpr.Location(newName)]
	if !ok {
		return fmt.Errorf("no service %q", newName)
	}
	sub, err := compliance.Substitutable(oldSvc, newSvc)
	if err != nil {
		return err
	}
	eq, err := contract.Equivalent(oldSvc, newSvc)
	if err != nil {
		return err
	}
	switch {
	case eq:
		fmt.Printf("%s and %s are EQUIVALENT: interchangeable both ways\n", oldName, newName)
	case sub:
		fmt.Printf("%s can replace %s: every compliant client stays compliant\n", newName, oldName)
	default:
		fmt.Printf("%s can NOT safely replace %s\n", newName, oldName)
		return fmt.Errorf("not substitutable")
	}
	return nil
}

// cmdDual prints the canonical dual of a service, a client, or a request
// body (OWNER.REQUEST).
func cmdDual(f *parser.File, of string) error {
	if of == "" {
		return fmt.Errorf("dual wants -of NAME or -of OWNER.REQUEST")
	}
	var e hexpr.Expr
	if owner, req, ok := strings.Cut(of, "."); ok {
		ownerExpr, err := exprByName(f, owner)
		if err != nil {
			return err
		}
		body, _, err := contract.RequestBody(ownerExpr, hexpr.RequestID(req))
		if err != nil {
			return err
		}
		e = body
	} else {
		var err error
		e, err = exprByName(f, of)
		if err != nil {
			return err
		}
	}
	d, err := contract.Dual(e)
	if err != nil {
		return err
	}
	fmt.Printf("contract : %s\n", hexpr.Pretty(contract.Project(e)))
	fmt.Printf("dual     : %s\n", hexpr.Pretty(d))
	return nil
}

// cmdEffect infers the type and effect of a λ-program; with a declarations
// file, policy aliases resolve and the program's plans are classified
// against the declared repository.
func cmdEffect(src, declsPath string, workers int) error {
	var aliases map[string]hexpr.PolicyID
	var f *parser.File
	if declsPath != "" {
		declSrc, err := os.ReadFile(declsPath)
		if err != nil {
			return err
		}
		f, err = parser.ParseFile(string(declSrc))
		if err != nil {
			return err
		}
		aliases = f.Instances
	}
	term, err := parser.ParseLambdaWith(src, aliases)
	if err != nil {
		return err
	}
	ty, eff, err := lambda.InferClosed(term)
	if err != nil {
		return err
	}
	fmt.Printf("type   : %s\n", ty)
	fmt.Printf("effect : %s\n", hexpr.Pretty(eff))
	if f == nil {
		return nil
	}
	reqs := hexpr.Requests(eff)
	if len(reqs) == 0 {
		return nil
	}
	fmt.Println("plans  :")
	as, err := plans.AssessAll(f.Repo, f.Table, "program", eff, plans.Options{Workers: workers})
	if err != nil {
		return err
	}
	for _, a := range as {
		fmt.Printf("  %-30s %s\n", a.Plan, a.Report)
	}
	return nil
}

// cmdDot renders one artifact as Graphviz dot: a policy template, the LTS
// of a declared service or client, or the product automaton of a request
// against a service.
func cmdDot(f *parser.File, policyName, ltsName, productSpec, vs string) error {
	switch {
	case policyName != "":
		a, ok := f.Automata[policyName]
		if !ok {
			return fmt.Errorf("no policy %q", policyName)
		}
		fmt.Print(a.DOT())
		return nil
	case ltsName != "":
		e, err := exprByName(f, ltsName)
		if err != nil {
			return err
		}
		l, err := lts.Build(e)
		if err != nil {
			return err
		}
		fmt.Print(l.DOT(ltsName))
		return nil
	case productSpec != "":
		owner, req, ok := strings.Cut(productSpec, ".")
		if !ok {
			return fmt.Errorf("-product wants OWNER.REQUEST, got %q", productSpec)
		}
		ownerExpr, err := exprByName(f, owner)
		if err != nil {
			return err
		}
		body, _, err := contract.RequestBody(ownerExpr, hexpr.RequestID(req))
		if err != nil {
			return err
		}
		service, ok := f.Repo[hexpr.Location(vs)]
		if !ok {
			return fmt.Errorf("-vs: no service %q", vs)
		}
		p, err := compliance.NewProduct(body, service)
		if err != nil {
			return err
		}
		fmt.Print(p.DOT(productSpec + "_vs_" + vs))
		return nil
	}
	return fmt.Errorf("dot wants one of -policy, -lts or -product (with -vs)")
}

// exprByName resolves a service location or client name to its expression.
func exprByName(f *parser.File, name string) (hexpr.Expr, error) {
	if e, ok := f.Repo[hexpr.Location(name)]; ok {
		return e, nil
	}
	if c, err := f.Client(name); err == nil {
		return c.Expr, nil
	}
	return nil, fmt.Errorf("no service or client named %q", name)
}

func client(f *parser.File, name string) (parser.ClientDecl, error) {
	return engine.SelectClient(f, name)
}

func sortedLocs(repo network.Repository) []hexpr.Location { return repo.Locations() }

func cmdParse(f *parser.File) error {
	var aliases []string
	for a := range f.Instances {
		aliases = append(aliases, a)
	}
	sort.Strings(aliases)
	for _, a := range aliases {
		fmt.Printf("instance %-10s = %s\n", a, f.Instances[a])
	}
	for _, loc := range sortedLocs(f.Repo) {
		fmt.Printf("service  %-10s = %s\n", loc, hexpr.Pretty(f.Repo[loc]))
	}
	for _, c := range f.Clients {
		fmt.Printf("client   %-10s @ %s plan %s = %s\n", c.Name, c.Loc, c.Plan, hexpr.Pretty(c.Expr))
	}
	return nil
}

func cmdProject(f *parser.File) error {
	for _, loc := range sortedLocs(f.Repo) {
		fmt.Printf("%-10s ! = %s\n", loc, hexpr.Pretty(contract.Project(f.Repo[loc])))
	}
	for _, c := range f.Clients {
		fmt.Printf("%-10s ! = %s\n", c.Name, hexpr.Pretty(contract.Project(c.Expr)))
	}
	return nil
}

// cmdCompliance prints, for every request body found in clients and
// services, its compliance against every service of the repository.
func cmdCompliance(f *parser.File) error {
	type req struct {
		owner string
		id    hexpr.RequestID
		body  hexpr.Expr
	}
	var reqs []req
	collect := func(owner string, e hexpr.Expr) {
		hexpr.Walk(e, func(x hexpr.Expr) {
			if s, ok := x.(hexpr.Session); ok {
				reqs = append(reqs, req{owner: owner, id: s.Req, body: s.Body})
			}
		})
	}
	for _, c := range f.Clients {
		collect(c.Name, c.Expr)
	}
	for _, loc := range sortedLocs(f.Repo) {
		collect(string(loc), f.Repo[loc])
	}
	locs := sortedLocs(f.Repo)
	fmt.Printf("%-16s", "request")
	for _, l := range locs {
		fmt.Printf(" %-8s", l)
	}
	fmt.Println()
	for _, r := range reqs {
		fmt.Printf("%-16s", fmt.Sprintf("%s.%s", r.owner, r.id))
		for _, l := range locs {
			ok, err := compliance.Compliant(r.body, f.Repo[l])
			if err != nil {
				return err
			}
			mark := "no"
			if ok {
				mark = "YES"
			}
			fmt.Printf(" %-8s", mark)
		}
		fmt.Println()
	}
	return nil
}

// cmdValidity prints, for every service and every policy instance, whether
// the service framed by the policy is valid.
func cmdValidity(f *parser.File) error {
	var aliases []string
	for a := range f.Instances {
		aliases = append(aliases, a)
	}
	sort.Strings(aliases)
	fmt.Printf("%-10s", "service")
	for _, a := range aliases {
		fmt.Printf(" %-8s", a)
	}
	fmt.Println()
	for _, loc := range sortedLocs(f.Repo) {
		fmt.Printf("%-10s", loc)
		for _, a := range aliases {
			framed := hexpr.Frame(f.Instances[a], f.Repo[loc])
			ok, err := valid.Valid(framed, f.Table)
			if err != nil {
				return err
			}
			mark := "VIOL"
			if ok {
				mark = "ok"
			}
			fmt.Printf(" %-8s", mark)
		}
		fmt.Println()
	}
	return nil
}

func cmdPlans(f *parser.File, name string, prune, jsonOut, stream, stats bool, workers int, cacheDir string, bud *budget.Budget) error {
	c, err := client(f, name)
	if err != nil {
		return err
	}
	sess, err := engine.Open(cacheDir)
	if err != nil {
		return err
	}
	defer sess.Close()
	opts := plans.Options{
		PruneNonCompliant: prune,
		Workers:           workers,
		Budget:            bud,
	}
	if stats {
		opts.Stats = &plans.FusedStats{}
	}
	// finalize closes the run once all partial results are printed: an
	// isolated worker panic (exit 2) outranks a budget cutoff or
	// interruption (exit 3).
	finalize := func(runErr error) error {
		if err := printPlanStats(stats, sess.Cache, opts.Stats); err != nil {
			return err
		}
		printStoreStats(stats, sess.Disk)
		if runErr != nil {
			return runErr
		}
		if e := bud.Exhausted(); e != nil {
			return e
		}
		return nil
	}
	if stream {
		// Stream assessments as the fused engine produces them — first
		// results appear while later plans are still being replayed.
		var enc *json.Encoder
		if jsonOut {
			enc = json.NewEncoder(os.Stdout)
		}
		total, validCount := 0, 0
		err := sess.AssessStream(f, c, opts,
			func(a plans.Assessment) error {
				total++
				if a.Report.Verdict == verify.Valid {
					validCount++
				}
				if jsonOut {
					return enc.Encode(engine.ToPlanEntry(a))
				}
				fmt.Printf("%-30s %s\n", a.Plan, a.Report)
				return nil
			})
		if err != nil && !errors.As(err, new(*budget.InternalError)) {
			return err
		}
		if !jsonOut {
			fmt.Printf("%d plan(s), %d valid\n", total, validCount)
		}
		return finalize(err)
	}
	as, err := sess.Assess(f, c, opts)
	if err != nil && !errors.As(err, new(*budget.InternalError)) {
		return err
	}
	runErr := err
	if jsonOut {
		out := make([]engine.PlanEntry, len(as))
		for i, a := range as {
			out[i] = engine.ToPlanEntry(a)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			return err
		}
		return finalize(runErr)
	}
	validCount := 0
	for _, a := range as {
		fmt.Printf("%-30s %s\n", a.Plan, a.Report)
		if a.Report.Verdict == verify.Valid {
			validCount++
		}
	}
	fmt.Printf("%d plan(s), %d valid\n", len(as), validCount)
	return finalize(runErr)
}

// printPlanStats reports the memo-cache hit rate and the fused engine's
// work counters on stderr (keeping stdout machine-readable under -json).
func printPlanStats(enabled bool, cache *memo.Cache, fs *plans.FusedStats) error {
	if !enabled {
		return nil
	}
	st := cache.Stats()
	fmt.Fprintf(os.Stderr, "stats: cache %d hits, %d misses (%.1f%% hit rate), %d entries, ~%d bytes\n",
		st.Hits(), st.Misses(), st.HitRate()*100, st.Entries(), st.ApproxBytes)
	if fs != nil {
		fmt.Fprintf(os.Stderr,
			"stats: fused %d plans assessed, %d states expanded, %d edges, %d replay states, %d memo hits, %d bindings pruned\n",
			fs.PlansAssessed.Load(), fs.StatesExpanded.Load(), fs.EdgesBuilt.Load(),
			fs.ReplayStates.Load(), fs.ReplayMemoHits.Load(), fs.BindingsPruned.Load())
	}
	return nil
}

func cmdCheck(f *parser.File, name string, jsonOut, stats bool, cacheDir string, bud *budget.Budget) error {
	c, err := client(f, name)
	if err != nil {
		return err
	}
	sess, err := engine.Open(cacheDir)
	if err != nil {
		return err
	}
	defer sess.Close()
	r, err := sess.CheckPlan(f, c, bud)
	if err != nil {
		return err
	}
	if stats {
		st := sess.Cache.Stats()
		fmt.Fprintf(os.Stderr, "stats: cache %d hits, %d misses (%.1f%% hit rate), %d entries, ~%d bytes\n",
			st.Hits(), st.Misses(), st.HitRate()*100, st.Entries(), st.ApproxBytes)
		printStoreStats(true, sess.Disk)
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(r); err != nil {
			return err
		}
	} else {
		fmt.Printf("client %s under %s: %s\n", c.Name, c.Plan, r)
	}
	return engine.CheckErr(r, bud)
}

// cmdCheckAll validates every declared client, optionally under bounded
// availability ("loc=n,loc=n"). Without capacity bounds the components of
// a network never interact, so each client is checked by its own
// exploration — the per-client verdicts persist independently in the
// -cache store, which is what makes re-checking an edited repository
// proportional to the edit's dependency cone. With bounded availability
// the clients compete for replicas and only the whole-network product
// exploration is sound, so the verdict is checked (and persisted) whole.
func cmdCheckAll(f *parser.File, src, capSpec string, jsonOut, stats bool, cacheDir string, bud *budget.Budget) error {
	var caps map[hexpr.Location]int
	if capSpec != "" {
		var err error
		caps, err = parseCaps(capSpec)
		if err != nil {
			return err
		}
	}
	sess, err := engine.Open(cacheDir)
	if err != nil {
		return err
	}
	defer sess.Close()
	res, runErr := sess.CheckAll(f, src, caps, bud)
	// Lint and audit findings surface alongside the verdict (on stderr, so
	// -json stdout stays machine-readable); witness details stay behind
	// `susc explain` and `susc audit -plan`.
	for _, d := range res.Lint {
		fmt.Fprintf(os.Stderr, "lint: %s\n", d)
		if d.Witness != nil {
			fmt.Fprintf(os.Stderr, "lint: \trun `susc explain FILE -code %s` for the %d-step witness\n",
				d.Code, len(d.Witness.Steps))
		}
	}
	if res.Audit != nil {
		for _, d := range res.Audit.Diagnostics {
			fmt.Fprintf(os.Stderr, "audit: %s\n", d)
			if d.Code == lint.CodeInternalError {
				continue
			}
			if d.Witness != nil {
				fmt.Fprintf(os.Stderr, "audit: \trun `susc audit FILE -plan` for the %d-step witness\n",
					len(d.Witness.Steps))
			}
		}
	}
	if runErr != nil {
		return runErr
	}
	if stats {
		st := sess.Cache.Stats()
		fmt.Fprintf(os.Stderr, "stats: cache %d hits, %d misses (%.1f%% hit rate), %d entries, ~%d bytes\n",
			st.Hits(), st.Misses(), st.HitRate()*100, st.Entries(), st.ApproxBytes)
		printStoreStats(true, sess.Disk)
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res.Report); err != nil {
			return err
		}
	} else {
		fmt.Printf("network of %d client(s): %s\n", len(f.Clients), res.Report)
	}
	return res.Err(bud)
}

func cmdRun(f *parser.File, name string, seed int64, steps int, monitored, all bool, capSpec string) error {
	var selected []parser.ClientDecl
	if all {
		selected = f.Clients
	} else {
		c, err := client(f, name)
		if err != nil {
			return err
		}
		selected = []parser.ClientDecl{c}
	}
	var clients []network.Client
	for _, c := range selected {
		if c.Plan == nil {
			return fmt.Errorf("client %s declares no plan", c.Name)
		}
		clients = append(clients, network.Client{Loc: c.Loc, Expr: c.Expr, Plan: c.Plan})
	}
	cfg := network.NewConfig(f.Repo, f.Table, clients...)
	if capSpec != "" {
		caps, err := parseCaps(capSpec)
		if err != nil {
			return err
		}
		cfg.WithAvailability(caps)
	}
	opts := network.RunOptions{MaxSteps: steps, Monitored: monitored}
	if seed != 0 {
		opts.Rand = rand.New(rand.NewSource(seed))
	}
	res := cfg.Run(opts)
	fmt.Printf("status: %s after %d steps\n", res.Status, res.Steps)
	for _, e := range res.Trace {
		fmt.Printf("  [%s] %s\n", selected[e.Comp].Name, e.Label)
	}
	for i, comp := range cfg.Comps {
		fmt.Printf("history of %s: %s\n", selected[i].Name, comp.Hist)
	}
	return nil
}

// parseCaps parses "loc=n,loc=n" availability specs.
func parseCaps(spec string) (map[hexpr.Location]int, error) {
	return engine.ParseCaps(spec)
}
