package main

import (
	"encoding/json"
	"errors"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"susc/internal/engine"
	"susc/internal/faultinject"
	"susc/internal/store"
)

// TestServeBadAddr: an unbindable listen address is a startup failure
// reported as a generic error — exit 1, not a panic or a hang.
func TestServeBadAddr(t *testing.T) {
	err := run([]string{"serve", "-addr", "256.256.256.256:notaport"})
	if err == nil {
		t.Fatal("bad -addr accepted")
	}
	if got := exitCode(err); got != 1 {
		t.Fatalf("exitCode = %d, want 1", got)
	}
}

// TestServeRejectsPositionalArgs: serve takes no FILE operand.
func TestServeRejectsPositionalArgs(t *testing.T) {
	err := run([]string{"serve", hotelFile})
	if err == nil || !strings.Contains(err.Error(), "no FILE") {
		t.Fatalf("err = %v, want no-FILE refusal", err)
	}
	if got := exitCode(err); got != 1 {
		t.Fatalf("exitCode = %d, want 1", got)
	}
}

// TestServeLockedStore: starting a server over a cache directory
// another process holds fails up front with the typed lock error,
// naming the holder — exit 1.
func TestServeLockedStore(t *testing.T) {
	dir := t.TempDir()
	sess, err := engine.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	err = run([]string{"serve", "-addr", "127.0.0.1:0", "-cache", dir})
	var le *store.LockedError
	if !errors.As(err, &le) {
		t.Fatalf("err = %v, want *store.LockedError", err)
	}
	if got := exitCode(err); got != 1 {
		t.Fatalf("exitCode = %d, want 1", got)
	}
}

// TestServeSIGTERMDrain runs the real serve subcommand in-process:
// wait for the ready file, verify the served plan records are
// byte-identical to the CLI's own -stream -json output, then SIGTERM
// the process while a request is in flight. The drain must let that
// request finish (exit 0 in its done line), run() must return nil, and
// no goroutines may leak.
func TestServeSIGTERMDrain(t *testing.T) {
	before := runtime.NumGoroutine()
	dir := t.TempDir()
	ready := filepath.Join(dir, "ready")
	srcBytes, err := os.ReadFile(hotelFile)
	if err != nil {
		t.Fatal(err)
	}
	src := string(srcBytes)

	runErr := make(chan error, 1)
	go func() {
		runErr <- run([]string{"serve", "-addr", "127.0.0.1:0", "-ready-file", ready})
	}()
	var base string
	for i := 0; ; i++ {
		if b, err := os.ReadFile(ready); err == nil && strings.HasSuffix(string(b), "\n") {
			base = "http://" + strings.TrimSpace(string(b))
			break
		}
		if i > 400 {
			t.Fatal("ready file never appeared")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// CLI/server parity: the served record lines are exactly what
	// `susc plans -client c2 -stream -json` writes to stdout.
	cliOut, err := capture(t, func() error {
		return run([]string{"plans", hotelFile, "-client", "c2", "-stream", "-json"})
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/plans?client=c2", "text/plain", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	served := readNDJSON(t, resp)
	var records []string
	for _, line := range served {
		if !strings.HasPrefix(line, `{"susc"`) {
			records = append(records, line)
		}
	}
	cliLines := strings.Split(strings.TrimSpace(cliOut), "\n")
	if strings.Join(records, "\n") != strings.Join(cliLines, "\n") {
		t.Fatalf("served records differ from CLI stream:\nserver:\n%s\ncli:\n%s",
			strings.Join(records, "\n"), cliOut)
	}

	// Park a request inside the handler, then deliver SIGTERM.
	hold := make(chan struct{})
	var held atomic.Bool
	restore := faultinject.Set(func(p faultinject.Point, unit string) {
		if p == faultinject.ServeHandler && held.CompareAndSwap(false, true) {
			<-hold
		}
	})
	defer restore()
	inflight := make(chan []string, 1)
	go func() {
		resp, err := http.Post(base+"/v1/checkall", "text/plain", strings.NewReader(src))
		if err != nil {
			inflight <- nil
			return
		}
		inflight <- readNDJSON(t, resp)
	}()
	for i := 0; ; i++ {
		st := struct {
			InFlight int `json:"inFlight"`
		}{}
		r, err := http.Get(base + "/stats")
		if err == nil {
			json.NewDecoder(r.Body).Decode(&st)
			r.Body.Close()
		}
		if st.InFlight == 1 {
			break
		}
		if i > 400 {
			t.Fatal("request never became in-flight")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let the drain begin
	close(hold)

	if err := <-runErr; err != nil {
		t.Fatalf("serve after SIGTERM = %v, want nil (exit 0)", err)
	}
	lines := <-inflight
	if lines == nil {
		t.Fatal("in-flight request was dropped during drain")
	}
	last := lines[len(lines)-1]
	if !strings.Contains(last, `"susc":"done"`) || !strings.Contains(last, `"exit":0`) {
		t.Fatalf("in-flight request did not complete cleanly: %q", last)
	}

	for i := 0; ; i++ {
		if runtime.NumGoroutine() <= before+2 {
			break
		}
		if i >= 50 {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// readNDJSON drains an HTTP response into trimmed NDJSON lines.
func readNDJSON(t *testing.T, resp *http.Response) []string {
	t.Helper()
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return strings.Split(strings.TrimSpace(sb.String()), "\n")
}
