// Command suscvet is the engine's meta-linter: it statically enforces
// this repository's own safety invariants over its Go source — the same
// static-first programme susc applies to service specifications, turned
// on the checker itself.
//
// Usage:
//
//	suscvet [flags] [DIR]
//
// DIR is any directory inside the module (default "."); the whole
// module is always analysed. Flags:
//
//	-json      emit findings as NDJSON (one object per line) on stdout
//	-stats     per-analyzer finding/suppression counts and unused
//	           //suscvet:ignore pragmas, on stderr
//	-list      print the registered analyzers and codes, then exit
//	-severity  report findings at or above this severity
//	           (info, warning, error; default info = everything)
//
// Exit status: 0 clean, 1 findings, 2 the analysis itself failed
// (parse/type error, unreadable module, bad flag value) — mirroring the
// susc exit protocol's findings/internal split. Findings below the
// -severity floor neither print nor fail the run.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"susc/internal/govet"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// severityRank orders the severity vocabulary; filtering keeps findings
// whose rank is at least the floor's.
var severityRank = map[string]int{"info": 0, "warning": 1, "error": 2}

// filterSeverity keeps the diagnostics at or above the floor.
func filterSeverity(diags []govet.Diagnostic, floor string) []govet.Diagnostic {
	min := severityRank[floor]
	var kept []govet.Diagnostic
	for _, d := range diags {
		if severityRank[d.Severity] >= min {
			kept = append(kept, d)
		}
	}
	return kept
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("suscvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		jsonOut  = fs.Bool("json", false, "emit findings as NDJSON")
		stats    = fs.Bool("stats", false, "print per-analyzer stats on stderr")
		list     = fs.Bool("list", false, "list registered analyzers and exit")
		severity = fs.String("severity", "info",
			"report findings at or above this severity (info, warning, error)")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: suscvet [-json] [-stats] [-list] [-severity LEVEL] [DIR]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	// Validate the severity floor before the (expensive) module load.
	if _, ok := severityRank[*severity]; !ok {
		fmt.Fprintf(stderr, "suscvet: -severity %q: want info, warning or error\n", *severity)
		return 2
	}

	if *list {
		for _, a := range govet.Analyzers() {
			fmt.Fprintf(stdout, "%s  %-18s %s\n", a.Code, a.Name, a.Doc)
		}
		fmt.Fprintf(stdout, "%s  %-18s %s\n", govet.CodeBadPragma, "driver", "malformed //suscvet:ignore pragma")
		return 0
	}

	dir := "."
	if fs.NArg() > 0 {
		dir = fs.Arg(0)
	}

	loader, err := govet.NewLoader(dir)
	if err != nil {
		fmt.Fprintf(stderr, "suscvet: %v\n", err)
		return 2
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		fmt.Fprintf(stderr, "suscvet: %v\n", err)
		return 2
	}
	checker := govet.New(loader, govet.DefaultConfig())
	diags := filterSeverity(checker.Run(pkgs), *severity)

	for _, d := range diags {
		if *jsonOut {
			line, err := d.MarshalNDJSON()
			if err != nil {
				fmt.Fprintf(stderr, "suscvet: %v\n", err)
				return 2
			}
			fmt.Fprintln(stdout, string(line))
		} else {
			fmt.Fprintln(stdout, d.String())
		}
	}
	if *stats {
		for _, s := range checker.Stats() {
			fmt.Fprintf(stderr, "stats: %-18s %d finding(s), %d suppressed\n", s.Name, s.Findings, s.Suppressed)
		}
		for _, u := range checker.UnusedPragmas() {
			fmt.Fprintf(stderr, "stats: %s\n", u)
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
