// Command suscvet is the engine's meta-linter: it statically enforces
// this repository's own safety invariants over its Go source — the same
// static-first programme susc applies to service specifications, turned
// on the checker itself.
//
// Usage:
//
//	suscvet [flags] [DIR]
//
// DIR is any directory inside the module (default "."); the whole
// module is always analysed. Flags:
//
//	-json    emit findings as NDJSON (one object per line) on stdout
//	-stats   per-analyzer finding/suppression counts and unused
//	         //suscvet:ignore pragmas, on stderr
//	-list    print the registered analyzers and codes, then exit
//
// Exit status: 0 clean, 1 findings, 2 the analysis itself failed
// (parse/type error, unreadable module) — mirroring the susc exit
// protocol's findings/internal split.
package main

import (
	"flag"
	"fmt"
	"os"

	"susc/internal/govet"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		jsonOut = flag.Bool("json", false, "emit findings as NDJSON")
		stats   = flag.Bool("stats", false, "print per-analyzer stats on stderr")
		list    = flag.Bool("list", false, "list registered analyzers and exit")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: suscvet [-json] [-stats] [-list] [DIR]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range govet.Analyzers() {
			fmt.Printf("%s  %-18s %s\n", a.Code, a.Name, a.Doc)
		}
		fmt.Printf("%s  %-18s %s\n", govet.CodeBadPragma, "driver", "malformed //suscvet:ignore pragma")
		return 0
	}

	dir := "."
	if flag.NArg() > 0 {
		dir = flag.Arg(0)
	}

	loader, err := govet.NewLoader(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "suscvet: %v\n", err)
		return 2
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		fmt.Fprintf(os.Stderr, "suscvet: %v\n", err)
		return 2
	}
	checker := govet.New(loader, govet.DefaultConfig())
	diags := checker.Run(pkgs)

	for _, d := range diags {
		if *jsonOut {
			line, err := d.MarshalNDJSON()
			if err != nil {
				fmt.Fprintf(os.Stderr, "suscvet: %v\n", err)
				return 2
			}
			fmt.Println(string(line))
		} else {
			fmt.Println(d.String())
		}
	}
	if *stats {
		for _, s := range checker.Stats() {
			fmt.Fprintf(os.Stderr, "stats: %-18s %d finding(s), %d suppressed\n", s.Name, s.Findings, s.Suppressed)
		}
		for _, u := range checker.UnusedPragmas() {
			fmt.Fprintf(os.Stderr, "stats: %s\n", u)
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
