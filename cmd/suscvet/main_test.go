package main

import (
	"bytes"
	"strings"
	"testing"

	"susc/internal/govet"
)

// TestSeverityFlagValidation: a bad -severity value fails fast (exit 2,
// the analysis-failed half of the protocol) before the module loads.
func TestSeverityFlagValidation(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-severity", "bogus", "."}, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "-severity") {
		t.Fatalf("stderr %q must name the bad flag", errb.String())
	}
}

// TestFilterSeverity pins the floor semantics over the severity
// vocabulary the checker emits.
func TestFilterSeverity(t *testing.T) {
	diags := []govet.Diagnostic{
		{Code: govet.CodeBadPragma, Severity: "warning", Message: "w"},
		{Code: govet.CodeBudgetLoop, Severity: "error", Message: "e"},
	}
	if got := filterSeverity(diags, "info"); len(got) != 2 {
		t.Errorf("floor info kept %d, want 2", len(got))
	}
	if got := filterSeverity(diags, "warning"); len(got) != 2 {
		t.Errorf("floor warning kept %d, want 2", len(got))
	}
	got := filterSeverity(diags, "error")
	if len(got) != 1 || got[0].Code != govet.CodeBudgetLoop {
		t.Errorf("floor error kept %v, want the SVET001 finding only", got)
	}
}

// TestSeverityOf pins the code-to-severity mapping -severity keys on:
// pragma hygiene is a warning, every engine invariant an error.
func TestSeverityOf(t *testing.T) {
	if got := govet.SeverityOf(govet.CodeBadPragma); got != "warning" {
		t.Errorf("SeverityOf(SVET000) = %q, want warning", got)
	}
	for _, a := range govet.Analyzers() {
		if got := govet.SeverityOf(a.Code); got != "error" {
			t.Errorf("SeverityOf(%s) = %q, want error", a.Code, got)
		}
	}
}

// TestListExitsZero: -list prints the registry without loading the module.
func TestListExitsZero(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0 (stderr %q)", code, errb.String())
	}
	for _, c := range govet.Codes() {
		if !strings.Contains(out.String(), c) {
			t.Errorf("-list output missing %s", c)
		}
	}
}
