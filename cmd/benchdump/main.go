// Command benchdump runs the plan-synthesis benchmarks in-process via
// testing.Benchmark and emits one machine-readable JSON document, so CI
// and developers can archive comparable baselines (BENCH_baseline.json at
// the repository root) without scraping `go test -bench` output.
//
//	benchdump [-hotels N] [-o FILE]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"susc/internal/benchgen"
	"susc/internal/lint"
	"susc/internal/memo"
	"susc/internal/plans"
)

type result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// HitRate is the memo-cache hit rate over the whole benchmark run
	// (cached variants only).
	HitRate float64 `json:"hit_rate,omitempty"`
}

type document struct {
	GoVersion string `json:"go_version"`
	GoArch    string `json:"go_arch"`
	Hotels    int    `json:"hotels"`
	// Chained compares the legacy per-plan engine against the fused
	// shared-state-space engine on the benchgen.Chained workload.
	Chained *chainedDoc `json:"chained,omitempty"`
	// LintSemantic measures the semantic analyzer suite (SUSC011–015,
	// witness extraction included) over the surface rendering of a
	// Chained workload.
	LintSemantic *lintDoc `json:"lint_semantic,omitempty"`
	Results      []result `json:"results"`
}

// lintDoc summarizes the semantic-lint series: the dominant cost is
// SUSC013's plan-space emptiness check, which explores the full
// fanout^depth plan family through the fused engine and memo cache.
type lintDoc struct {
	Depth       int     `json:"depth"`
	Fanout      int     `json:"fanout"`
	Plans       int     `json:"plans"`
	SourceBytes int     `json:"source_bytes"`
	HitRate     float64 `json:"hit_rate"`
}

// chainedDoc is the legacy-vs-fused comparison on one Chained workload:
// the headline claim of the fused engine (BENCH_pr2.json archives it).
type chainedDoc struct {
	Depth   int     `json:"depth"`
	Fanout  int     `json:"fanout"`
	Plans   int     `json:"plans"`
	Speedup float64 `json:"speedup"` // legacy ns_per_op / fused ns_per_op
	// Fused-engine work counters from the last fused iteration.
	StatesExpanded uint64 `json:"states_expanded"`
	EdgesBuilt     uint64 `json:"edges_built"`
	ReplayStates   uint64 `json:"replay_states"`
	ReplayMemoHits uint64 `json:"replay_memo_hits"`
}

func main() {
	hotels := flag.Int("hotels", 32, "size of the benchgen.Hotels workload")
	depth := flag.Int("chained-depth", 12, "depth of the benchgen.Chained workload (0 skips it)")
	fanout := flag.Int("chained-fanout", 2, "fanout of the benchgen.Chained workload")
	lintDepth := flag.Int("lint-semantic", 8, "depth of the Chained workload for the semantic-lint series (0 skips it; keep fanout^depth within the analyzers' plan budget)")
	out := flag.String("o", "", "write the JSON document here instead of stdout")
	chainedSrc := flag.Bool("chained-src", false, "print the surface-syntax source of the Chained workload and exit (no benchmarks); for budget/timeout smoke tests")
	flag.Parse()

	if *chainedSrc {
		src := benchgen.ChainedSource(*depth, *fanout)
		if *out != "" {
			if err := os.WriteFile(*out, []byte(src), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			return
		}
		fmt.Print(src)
		return
	}

	w := benchgen.Hotels(*hotels)
	run := func(workers int, cache *memo.Cache) testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				as, err := plans.AssessAll(w.Repo, w.Table, w.Loc, w.Client,
					plans.Options{PruneNonCompliant: true, Workers: workers, Cache: cache})
				if err != nil {
					b.Fatal(err)
				}
				if len(as) == 0 {
					b.Fatal("no plans")
				}
			}
		})
	}

	doc := document{GoVersion: runtime.Version(), GoArch: runtime.GOARCH, Hotels: *hotels}
	for _, workers := range []int{1, 4} {
		r := run(workers, nil)
		doc.Results = append(doc.Results, toResult(
			fmt.Sprintf("PlanSynthesisParallel/workers=%d", workers), r, 0))
	}
	cache := memo.New()
	r := run(4, cache)
	doc.Results = append(doc.Results, toResult(
		fmt.Sprintf("PlanSynthesisCached/workers=%d", 4), r, cache.Stats().HitRate()))

	if *depth > 0 {
		doc.Chained = runChained(*depth, *fanout, &doc)
	}
	if *lintDepth > 0 {
		doc.LintSemantic = runLintSemantic(*lintDepth, *fanout, &doc)
	}

	enc := json.NewEncoder(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdump:", err)
			os.Exit(1)
		}
		defer f.Close()
		enc = json.NewEncoder(f)
	}
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchdump:", err)
		os.Exit(1)
	}
}

// runChained benchmarks the legacy and fused engines on one Chained
// workload, appends both results to the document, and returns the
// comparison summary.
func runChained(depth, fanout int, doc *document) *chainedDoc {
	w := benchgen.Chained(depth, fanout)
	var stats plans.FusedStats
	run := func(engine plans.Engine, st *plans.FusedStats) testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if st != nil {
					*st = plans.FusedStats{}
				}
				as, err := plans.AssessAll(w.Repo, w.Table, w.Loc, w.Client,
					plans.Options{PruneNonCompliant: true, Engine: engine, Stats: st})
				if err != nil {
					b.Fatal(err)
				}
				if len(as) != w.PlanCount {
					b.Fatalf("plans = %d, want %d", len(as), w.PlanCount)
				}
			}
		})
	}
	legacy := run(plans.EngineLegacy, nil)
	fused := run(plans.EngineFused, &stats)
	base := fmt.Sprintf("PlanSynthesisChained/depth=%d/fanout=%d", depth, fanout)
	doc.Results = append(doc.Results,
		toResult(base+"/legacy", legacy, 0),
		toResult(base+"/fused", fused, 0))
	return &chainedDoc{
		Depth:  depth,
		Fanout: fanout,
		Plans:  w.PlanCount,
		Speedup: float64(legacy.T.Nanoseconds()) / float64(legacy.N) /
			(float64(fused.T.Nanoseconds()) / float64(fused.N)),
		StatesExpanded: stats.StatesExpanded,
		EdgesBuilt:     stats.EdgesBuilt,
		ReplayStates:   stats.ReplayStates,
		ReplayMemoHits: stats.ReplayMemoHits,
	}
}

// runLintSemantic benchmarks the full lint suite — default analyzers plus
// the semantic SUSC011–015 pass with witness extraction — over the surface
// rendering of a Chained workload, appends two series (syntactic-only and
// full) to the document, and returns the summary. The workload is lint-
// clean, so the run measures pure analysis: SUSC013 alone walks the whole
// fanout^depth plan space through the fused engine.
func runLintSemantic(depth, fanout int, doc *document) *lintDoc {
	src := benchgen.ChainedSource(depth, fanout)
	w := benchgen.Chained(depth, fanout)
	cache := memo.New()
	run := func(analyzers []*lint.Analyzer) testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				diags := lint.Source(src, lint.Options{Analyzers: analyzers, Cache: cache})
				if len(diags) != 0 {
					b.Fatalf("chained workload is not lint-clean: %v", diags)
				}
			}
		})
	}
	base := fmt.Sprintf("LintChained/depth=%d/fanout=%d", depth, fanout)
	doc.Results = append(doc.Results,
		toResult(base+"/syntactic", run(lint.Analyzers()), 0),
		toResult(base+"/semantic", run(lint.AllAnalyzers()), cache.Stats().HitRate()))
	return &lintDoc{
		Depth:       depth,
		Fanout:      fanout,
		Plans:       w.PlanCount,
		SourceBytes: len(src),
		HitRate:     cache.Stats().HitRate(),
	}
}

func toResult(name string, r testing.BenchmarkResult, hitRate float64) result {
	return result{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		HitRate:     hitRate,
	}
}
