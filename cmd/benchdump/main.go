// Command benchdump runs the plan-synthesis benchmarks in-process via
// testing.Benchmark and emits one machine-readable JSON document, so CI
// and developers can archive comparable baselines (BENCH_baseline.json at
// the repository root) without scraping `go test -bench` output.
//
//	benchdump [-hotels N] [-chained-compare] [-cpuprofile FILE] [-o FILE]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"testing"
	"time"

	"susc/internal/benchgen"
	"susc/internal/hash"
	"susc/internal/hexpr"
	"susc/internal/lint"
	"susc/internal/memo"
	"susc/internal/network"
	"susc/internal/plans"
	"susc/internal/store"
	"susc/internal/verify"
)

type result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// HitRate is the memo-cache hit rate over the whole benchmark run
	// (cached variants only).
	HitRate float64 `json:"hit_rate,omitempty"`
}

type document struct {
	GoVersion string `json:"go_version"`
	GoArch    string `json:"go_arch"`
	Hotels    int    `json:"hotels"`
	// Chained compares the legacy per-plan engine against the fused
	// shared-state-space engine on the benchgen.Chained workload.
	Chained *chainedDoc `json:"chained,omitempty"`
	// LintSemantic measures the semantic analyzer suite (SUSC011–015,
	// witness extraction included) over the surface rendering of a
	// Chained workload.
	LintSemantic *lintDoc `json:"lint_semantic,omitempty"`
	// Incremental measures verification through the persistent verdict
	// store: a cold run populating it, a warm run replaying every verdict,
	// and a run after a one-declaration edit recomputing only the edited
	// cone.
	Incremental *incrementalDoc `json:"incremental,omitempty"`
	// Audit measures the whole-network flow audit (`susc audit`) over the
	// Chained workload: one cold pass through a fresh memo cache and the
	// best warm pass reusing it.
	Audit   *auditDoc `json:"audit,omitempty"`
	Results []result  `json:"results"`
}

// auditDoc is the flow-audit series. HitRate is the memo-cache hit rate
// of the cold pass alone — the PR 9 gate (≥90% on Chained(12,2))
// measures intra-run sharing across the audited plan family, not
// warm-cache replay.
type auditDoc struct {
	Depth       int     `json:"depth"`
	Fanout      int     `json:"fanout"`
	ValidPlans  int     `json:"valid_plans"`
	Audited     int     `json:"audited"`
	SourceBytes int     `json:"source_bytes"`
	ColdNs      float64 `json:"cold_ns"`
	WarmNs      float64 `json:"warm_ns"`
	WarmSpeedup float64 `json:"warm_speedup"`
	HitRate     float64 `json:"hit_rate"`
	Findings    int     `json:"findings"`
}

// incrementalDoc is the persistent-store series: the many-client
// ChainedClients surface (the CI incremental-smoke workload) and the
// single-client Hotels plan family.
type incrementalDoc struct {
	Depth   int `json:"depth"`
	Fanout  int `json:"fanout"`
	Clients int `json:"clients"`
	// Nanoseconds per full verification pass (store open + every client),
	// one-shot measurements of the user-visible `checkall -cache` path.
	ColdNs float64 `json:"cold_ns"`
	WarmNs float64 `json:"warm_ns"`
	EditNs float64 `json:"edit_ns"`
	// WarmSpeedup is ColdNs/WarmNs — the headline of the store.
	WarmSpeedup float64 `json:"warm_speedup"`
	WarmHitRate float64 `json:"warm_hit_rate"`
	// EditRecomputed counts the plan verdicts recomputed after editing one
	// divergent service; EditFraction is its share of the client count.
	EditRecomputed uint64  `json:"edit_recomputed"`
	EditFraction   float64 `json:"edit_fraction"`
	StoreBytes     uint64  `json:"store_bytes"`
	// Hotels is the same cold/warm/edit triple over the Hotels plan
	// family assessed with plans.AssessAll.
	Hotels *hotelsIncDoc `json:"hotels,omitempty"`
}

type hotelsIncDoc struct {
	Hotels         int     `json:"hotels"`
	Plans          int     `json:"plans"`
	ColdNs         float64 `json:"cold_ns"`
	WarmNs         float64 `json:"warm_ns"`
	EditNs         float64 `json:"edit_ns"`
	WarmSpeedup    float64 `json:"warm_speedup"`
	EditRecomputed uint64  `json:"edit_recomputed"`
	EditFraction   float64 `json:"edit_fraction"`
}

// lintDoc summarizes the semantic-lint series: the dominant cost is
// SUSC013's plan-space emptiness check, which explores the full
// fanout^depth plan family through the fused engine and memo cache.
type lintDoc struct {
	Depth       int     `json:"depth"`
	Fanout      int     `json:"fanout"`
	Plans       int     `json:"plans"`
	SourceBytes int     `json:"source_bytes"`
	HitRate     float64 `json:"hit_rate"`
}

// chainedDoc is the engine comparison on one Chained workload: the
// headline claim of the shared-graph engine (BENCH_pr2.json archives the
// legacy-vs-fused pair; BENCH_pr6.json adds the compiled engine).
type chainedDoc struct {
	Depth   int     `json:"depth"`
	Fanout  int     `json:"fanout"`
	Plans   int     `json:"plans"`
	Speedup float64 `json:"speedup"` // legacy ns_per_op / current-engine ns_per_op
	// SpeedupVsFused (compare mode only) is the PR 6 headline: the
	// BENCH_pr2-era fused engine's ns_per_op over the compiled engine's,
	// measured in the same process on the same machine.
	SpeedupVsFused float64 `json:"speedup_vs_fused,omitempty"`
	// Fused-engine work counters from the last fused iteration.
	StatesExpanded uint64 `json:"states_expanded"`
	EdgesBuilt     uint64 `json:"edges_built"`
	ReplayStates   uint64 `json:"replay_states"`
	ReplayMemoHits uint64 `json:"replay_memo_hits"`
}

func main() {
	hotels := flag.Int("hotels", 32, "size of the benchgen.Hotels workload")
	depth := flag.Int("chained-depth", 12, "depth of the benchgen.Chained workload (0 skips it)")
	fanout := flag.Int("chained-fanout", 2, "fanout of the benchgen.Chained workload")
	lintDepth := flag.Int("lint-semantic", 8, "depth of the Chained workload for the semantic-lint series (0 skips it; keep fanout^depth within the analyzers' plan budget)")
	out := flag.String("o", "", "write the JSON document here instead of stdout")
	chainedSrc := flag.Bool("chained-src", false, "print the surface-syntax source of the Chained workload and exit (no benchmarks); for budget/timeout smoke tests")
	chainedClients := flag.Int("chained-clients", 0, "with -chained-src: emit the ChainedClients workload with this many planned clients instead (the incremental-smoke surface)")
	incremental := flag.Int("incremental", 0, "run the incremental-verification series (cold/warm/single-edit through a persistent store) with this many planned clients (0 skips it)")
	audit := flag.Bool("audit", false, "run the flow-audit series (cold/warm `susc audit` over the Chained workload, memo hit rate included)")
	compare := flag.Bool("chained-compare", false, "emit legacy/fused/compiled series side-by-side for the Chained workload (fused = the frozen BENCH_pr2-era reference engine)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile (taken after the benchmarks) to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdump:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "benchdump:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	defer func() {
		if *memprofile == "" {
			return
		}
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdump:", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "benchdump:", err)
			os.Exit(1)
		}
	}()

	if *chainedSrc {
		src := benchgen.ChainedSource(*depth, *fanout)
		if *chainedClients > 0 {
			src = benchgen.ChainedClientsSource(*depth, *fanout, *chainedClients)
		}
		if *out != "" {
			if err := os.WriteFile(*out, []byte(src), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			return
		}
		fmt.Print(src)
		return
	}

	w := benchgen.Hotels(*hotels)
	run := func(workers int, cache *memo.Cache) testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				as, err := plans.AssessAll(w.Repo, w.Table, w.Loc, w.Client,
					plans.Options{PruneNonCompliant: true, Workers: workers, Cache: cache})
				if err != nil {
					b.Fatal(err)
				}
				if len(as) == 0 {
					b.Fatal("no plans")
				}
			}
		})
	}

	doc := document{GoVersion: runtime.Version(), GoArch: runtime.GOARCH, Hotels: *hotels}
	for _, workers := range []int{1, 4} {
		r := run(workers, nil)
		doc.Results = append(doc.Results, toResult(
			fmt.Sprintf("PlanSynthesisParallel/workers=%d", workers), r, 0))
	}
	cache := memo.New()
	r := run(4, cache)
	doc.Results = append(doc.Results, toResult(
		fmt.Sprintf("PlanSynthesisCached/workers=%d", 4), r, cache.Stats().HitRate()))

	if *depth > 0 {
		doc.Chained = runChained(*depth, *fanout, *compare, &doc)
	}
	if *lintDepth > 0 {
		doc.LintSemantic = runLintSemantic(*lintDepth, *fanout, &doc)
	}
	if *incremental > 0 {
		doc.Incremental = runIncremental(*depth, *fanout, *incremental, *hotels, &doc)
	}
	if *audit && *depth > 0 {
		doc.Audit = runAudit(*depth, *fanout, &doc)
	}

	enc := json.NewEncoder(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdump:", err)
			os.Exit(1)
		}
		defer f.Close()
		enc = json.NewEncoder(f)
	}
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchdump:", err)
		os.Exit(1)
	}
}

// runChained benchmarks the engines on one Chained workload, appends the
// series to the document, and returns the comparison summary. The default
// mode emits the historical legacy/fused pair (fused = the current,
// compiled engine). Compare mode emits three series — legacy, fused (the
// frozen EngineReference, i.e. the engine BENCH_pr2 called "fused") and
// compiled — so a speedup claim against the PR 2 numbers is measured in
// one process on one machine instead of across archived JSON files.
func runChained(depth, fanout int, compare bool, doc *document) *chainedDoc {
	w := benchgen.Chained(depth, fanout)
	var stats plans.FusedStats
	run := func(engine plans.Engine, st *plans.FusedStats) testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			// Level the GC before timing: the engines run back-to-back in
			// one process, and whichever series follows a big one would
			// otherwise inherit an inflated pacing goal (fewer collections
			// → flattering numbers for the later engine). A plain GC only —
			// debug.FreeOSMemory would hand the pages back and make every
			// series refault its working set, a cost that lands on whichever
			// engine allocates its arenas up front rather than on whichever
			// is slower.
			runtime.GC()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if st != nil {
					st.Reset()
				}
				as, err := plans.AssessAll(w.Repo, w.Table, w.Loc, w.Client,
					plans.Options{PruneNonCompliant: true, Engine: engine, Stats: st})
				if err != nil {
					b.Fatal(err)
				}
				if len(as) != w.PlanCount {
					b.Fatalf("plans = %d, want %d", len(as), w.PlanCount)
				}
			}
		})
	}
	nsPerOp := func(r testing.BenchmarkResult) float64 {
		return float64(r.T.Nanoseconds()) / float64(r.N)
	}
	// merge pools two benchmark results: summing durations, iterations and
	// allocation counters keeps every per-op figure a true mean over the
	// combined iterations.
	merge := func(a, b testing.BenchmarkResult) testing.BenchmarkResult {
		return testing.BenchmarkResult{
			N: a.N + b.N, T: a.T + b.T,
			MemAllocs: a.MemAllocs + b.MemAllocs,
			MemBytes:  a.MemBytes + b.MemBytes,
		}
	}
	legacy := run(plans.EngineLegacy, nil)
	var compiled, reference testing.BenchmarkResult
	if compare {
		// Interleave the two engines under comparison and average over a
		// few rounds: on a shared box the available throughput drifts on
		// the scale of one series, so back-to-back single runs confound
		// engine speed with machine drift. Alternating the engines puts
		// both under (approximately) the same drift, and flipping which
		// engine leads each round cancels the residual position effect
		// (whichever series runs second starts on the heap state its
		// predecessor left behind).
		const rounds = 4
		for r := 0; r < rounds; r++ {
			if r%2 == 0 {
				reference = merge(reference, run(plans.EngineReference, nil))
				compiled = merge(compiled, run(plans.EngineFused, &stats))
			} else {
				compiled = merge(compiled, run(plans.EngineFused, &stats))
				reference = merge(reference, run(plans.EngineReference, nil))
			}
		}
	} else {
		compiled = run(plans.EngineFused, &stats)
	}
	base := fmt.Sprintf("PlanSynthesisChained/depth=%d/fanout=%d", depth, fanout)
	cd := &chainedDoc{
		Depth:          depth,
		Fanout:         fanout,
		Plans:          w.PlanCount,
		Speedup:        nsPerOp(legacy) / nsPerOp(compiled),
		StatesExpanded: stats.StatesExpanded.Load(),
		EdgesBuilt:     stats.EdgesBuilt.Load(),
		ReplayStates:   stats.ReplayStates.Load(),
		ReplayMemoHits: stats.ReplayMemoHits.Load(),
	}
	if compare {
		cd.SpeedupVsFused = nsPerOp(reference) / nsPerOp(compiled)
		doc.Results = append(doc.Results,
			toResult(base+"/legacy", legacy, 0),
			toResult(base+"/fused", reference, 0),
			toResult(base+"/compiled", compiled, 0))
		return cd
	}
	doc.Results = append(doc.Results,
		toResult(base+"/legacy", legacy, 0),
		toResult(base+"/fused", compiled, 0))
	return cd
}

// runLintSemantic benchmarks the full lint suite — default analyzers plus
// the semantic SUSC011–015 pass with witness extraction — over the surface
// rendering of a Chained workload, appends two series (syntactic-only and
// full) to the document, and returns the summary. The workload is lint-
// clean, so the run measures pure analysis: SUSC013 alone walks the whole
// fanout^depth plan space through the fused engine.
func runLintSemantic(depth, fanout int, doc *document) *lintDoc {
	src := benchgen.ChainedSource(depth, fanout)
	w := benchgen.Chained(depth, fanout)
	cache := memo.New()
	run := func(analyzers []*lint.Analyzer) testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				diags := lint.Source(src, lint.Options{Analyzers: analyzers, Cache: cache})
				if len(diags) != 0 {
					b.Fatalf("chained workload is not lint-clean: %v", diags)
				}
			}
		})
	}
	base := fmt.Sprintf("LintChained/depth=%d/fanout=%d", depth, fanout)
	doc.Results = append(doc.Results,
		toResult(base+"/syntactic", run(lint.Analyzers()), 0),
		toResult(base+"/semantic", run(lint.AllAnalyzers()), cache.Stats().HitRate()))
	return &lintDoc{
		Depth:       depth,
		Fanout:      fanout,
		Plans:       w.PlanCount,
		SourceBytes: len(src),
		HitRate:     cache.Stats().HitRate(),
	}
}

// runIncremental measures the persistent-store loop end to end, the way
// `susc checkall -cache` exercises it: every pass opens the store file,
// verifies every client's declared plan through a fresh in-memory cache
// backed by the store, and closes it. Cold populates, warm replays, and
// the edit pass — one divergent service of client 0 changed — recomputes
// exactly the clients whose dependency cone contains the edit. A second
// triple covers the single-client Hotels plan family through
// plans.AssessAll's incremental assessor.
func runIncremental(depth, fanout, n, hotels int, doc *document) *incrementalDoc {
	dir, err := os.MkdirTemp("", "susc-benchdump-")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdump:", err)
		os.Exit(1)
	}
	defer os.RemoveAll(dir)

	w := benchgen.ChainedClients(depth, fanout, n)
	path := filepath.Join(dir, "clients.store")
	pass := func(repo network.Repository) (time.Duration, store.Stats) {
		s, err := store.Open(path, hash.Fingerprint())
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdump:", err)
			os.Exit(1)
		}
		cache := memo.New()
		cache.AttachDisk(s)
		start := time.Now()
		for _, c := range w.Clients {
			r, err := verify.CheckPlanOpts(repo, w.Table, c.Loc, c.Expr, c.Plan,
				verify.Options{Cache: cache})
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchdump:", err)
				os.Exit(1)
			}
			if r.Verdict != verify.Valid {
				fmt.Fprintf(os.Stderr, "benchdump: client %s unexpectedly %s\n", c.Name, r.Verdict)
				os.Exit(1)
			}
		}
		d := time.Since(start)
		st := s.Stats()
		s.Close()
		return d, st
	}

	coldD, _ := pass(w.Repo)
	warmD, warmStats := pass(w.Repo)
	// Take the best of a few warm passes: the warm path is microseconds of
	// replay, where scheduler noise dominates a single measurement.
	for i := 0; i < 2; i++ {
		if d, st := pass(w.Repo); d < warmD {
			warmD, warmStats = d, st
		}
	}

	edited := network.Repository{}
	for l, e := range w.Repo {
		edited[l] = e
	}
	target := w.Divergent(0)
	edited[target] = hexpr.Cat(w.Repo[target], hexpr.Act(hexpr.E("tweak")))
	editD, editStats := pass(edited)

	inc := &incrementalDoc{
		Depth:          depth,
		Fanout:         fanout,
		Clients:        n,
		ColdNs:         float64(coldD.Nanoseconds()),
		WarmNs:         float64(warmD.Nanoseconds()),
		EditNs:         float64(editD.Nanoseconds()),
		WarmSpeedup:    float64(coldD.Nanoseconds()) / float64(warmD.Nanoseconds()),
		WarmHitRate:    warmStats.HitRate(),
		EditRecomputed: editStats.PerKind[store.KindPlanReport].Misses,
		EditFraction:   float64(editStats.PerKind[store.KindPlanReport].Misses) / float64(n),
		StoreBytes:     warmStats.Bytes(),
	}
	base := fmt.Sprintf("Incremental/chained-clients/depth=%d/fanout=%d/n=%d", depth, fanout, n)
	doc.Results = append(doc.Results,
		result{Name: base + "/cold", Iterations: 1, NsPerOp: inc.ColdNs},
		result{Name: base + "/warm", Iterations: 1, NsPerOp: inc.WarmNs, HitRate: inc.WarmHitRate},
		result{Name: base + "/edit", Iterations: 1, NsPerOp: inc.EditNs})

	hw := benchgen.Hotels(hotels)
	hpath := filepath.Join(dir, "hotels.store")
	var planCount int
	hpass := func(repo network.Repository) (time.Duration, store.Stats) {
		s, err := store.Open(hpath, hash.Fingerprint())
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdump:", err)
			os.Exit(1)
		}
		cache := memo.New()
		cache.AttachDisk(s)
		start := time.Now()
		as, err := plans.AssessAll(repo, hw.Table, hw.Loc, hw.Client,
			plans.Options{PruneNonCompliant: true, Cache: cache})
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdump:", err)
			os.Exit(1)
		}
		planCount = len(as)
		d := time.Since(start)
		st := s.Stats()
		s.Close()
		return d, st
	}
	hColdD, _ := hpass(hw.Repo)
	hWarmD, _ := hpass(hw.Repo)
	for i := 0; i < 2; i++ {
		if d, _ := hpass(hw.Repo); d < hWarmD {
			hWarmD = d
		}
	}
	hEdited := network.Repository{}
	for l, e := range hw.Repo {
		hEdited[l] = e
	}
	// h2 is the first valid-profile hotel: a mid-repository cone.
	hEdited["h2"] = hexpr.Cat(hw.Repo["h2"], hexpr.Act(hexpr.E("tweak")))
	hEditD, hEditStats := hpass(hEdited)

	inc.Hotels = &hotelsIncDoc{
		Hotels:         hotels,
		Plans:          planCount,
		ColdNs:         float64(hColdD.Nanoseconds()),
		WarmNs:         float64(hWarmD.Nanoseconds()),
		EditNs:         float64(hEditD.Nanoseconds()),
		WarmSpeedup:    float64(hColdD.Nanoseconds()) / float64(hWarmD.Nanoseconds()),
		EditRecomputed: hEditStats.PerKind[store.KindPlanReport].Misses,
		EditFraction:   float64(hEditStats.PerKind[store.KindPlanReport].Misses) / float64(planCount),
	}
	hbase := fmt.Sprintf("Incremental/hotels/n=%d", hotels)
	doc.Results = append(doc.Results,
		result{Name: hbase + "/cold", Iterations: 1, NsPerOp: inc.Hotels.ColdNs},
		result{Name: hbase + "/warm", Iterations: 1, NsPerOp: inc.Hotels.WarmNs},
		result{Name: hbase + "/edit", Iterations: 1, NsPerOp: inc.Hotels.EditNs})
	return inc
}

// runAudit measures the whole-network flow audit the way `susc audit`
// runs it: one cold pass — fresh memo cache, the whole (capped) valid-
// plan family flow-analyzed — and the best of a few warm passes reusing
// the cache. The cold pass's own hit rate is the headline: the audited
// plans of a Chained workload share almost all of their compliance and
// LTS sub-results, so the memo tier carries the family.
func runAudit(depth, fanout int, doc *document) *auditDoc {
	src := benchgen.ChainedSource(depth, fanout)
	cache := memo.New()
	run := func() (time.Duration, *lint.AuditResult) {
		start := time.Now()
		res := lint.AuditSource(src, lint.Options{Cache: cache})
		return time.Since(start), res
	}
	coldD, res := run()
	for _, d := range res.Diagnostics {
		if d.Code == lint.CodeInternalError {
			fmt.Fprintf(os.Stderr, "benchdump: audit internal error: %s\n", d.Message)
			os.Exit(1)
		}
	}
	coldHitRate := cache.Stats().HitRate()
	warmD, _ := run()
	for i := 0; i < 2; i++ {
		if d, _ := run(); d < warmD {
			warmD = d
		}
	}
	ad := &auditDoc{
		Depth:       depth,
		Fanout:      fanout,
		SourceBytes: len(src),
		ColdNs:      float64(coldD.Nanoseconds()),
		WarmNs:      float64(warmD.Nanoseconds()),
		WarmSpeedup: float64(coldD.Nanoseconds()) / float64(warmD.Nanoseconds()),
		HitRate:     coldHitRate,
		Findings:    len(res.Diagnostics),
	}
	for _, c := range res.Coverage {
		ad.ValidPlans += c.ValidPlans
		ad.Audited += c.Audited
	}
	base := fmt.Sprintf("Audit/chained/depth=%d/fanout=%d", depth, fanout)
	doc.Results = append(doc.Results,
		result{Name: base + "/cold", Iterations: 1, NsPerOp: ad.ColdNs, HitRate: coldHitRate},
		result{Name: base + "/warm", Iterations: 1, NsPerOp: ad.WarmNs, HitRate: cache.Stats().HitRate()})
	return ad
}

func toResult(name string, r testing.BenchmarkResult, hitRate float64) result {
	return result{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		HitRate:     hitRate,
	}
}
