// Command benchdump runs the plan-synthesis benchmarks in-process via
// testing.Benchmark and emits one machine-readable JSON document, so CI
// and developers can archive comparable baselines (BENCH_baseline.json at
// the repository root) without scraping `go test -bench` output.
//
//	benchdump [-hotels N] [-o FILE]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"susc/internal/benchgen"
	"susc/internal/memo"
	"susc/internal/plans"
)

type result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// HitRate is the memo-cache hit rate over the whole benchmark run
	// (cached variants only).
	HitRate float64 `json:"hit_rate,omitempty"`
}

type document struct {
	GoVersion string   `json:"go_version"`
	GoArch    string   `json:"go_arch"`
	Hotels    int      `json:"hotels"`
	Results   []result `json:"results"`
}

func main() {
	hotels := flag.Int("hotels", 32, "size of the benchgen.Hotels workload")
	out := flag.String("o", "", "write the JSON document here instead of stdout")
	flag.Parse()

	w := benchgen.Hotels(*hotels)
	run := func(workers int, cache *memo.Cache) testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				as, err := plans.AssessAll(w.Repo, w.Table, w.Loc, w.Client,
					plans.Options{PruneNonCompliant: true, Workers: workers, Cache: cache})
				if err != nil {
					b.Fatal(err)
				}
				if len(as) == 0 {
					b.Fatal("no plans")
				}
			}
		})
	}

	doc := document{GoVersion: runtime.Version(), GoArch: runtime.GOARCH, Hotels: *hotels}
	for _, workers := range []int{1, 4} {
		r := run(workers, nil)
		doc.Results = append(doc.Results, toResult(
			fmt.Sprintf("PlanSynthesisParallel/workers=%d", workers), r, 0))
	}
	cache := memo.New()
	r := run(4, cache)
	doc.Results = append(doc.Results, toResult(
		fmt.Sprintf("PlanSynthesisCached/workers=%d", 4), r, cache.Stats().HitRate()))

	enc := json.NewEncoder(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdump:", err)
			os.Exit(1)
		}
		defer f.Close()
		enc = json.NewEncoder(f)
	}
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchdump:", err)
		os.Exit(1)
	}
}

func toResult(name string, r testing.BenchmarkResult, hitRate float64) result {
	return result{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		HitRate:     hitRate,
	}
}
