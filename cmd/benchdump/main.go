// Command benchdump runs the plan-synthesis benchmarks in-process via
// testing.Benchmark and emits one machine-readable JSON document, so CI
// and developers can archive comparable baselines (BENCH_baseline.json at
// the repository root) without scraping `go test -bench` output.
//
//	benchdump [-hotels N] [-chained-compare] [-cpuprofile FILE] [-o FILE]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"testing"

	"susc/internal/benchgen"
	"susc/internal/lint"
	"susc/internal/memo"
	"susc/internal/plans"
)

type result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// HitRate is the memo-cache hit rate over the whole benchmark run
	// (cached variants only).
	HitRate float64 `json:"hit_rate,omitempty"`
}

type document struct {
	GoVersion string `json:"go_version"`
	GoArch    string `json:"go_arch"`
	Hotels    int    `json:"hotels"`
	// Chained compares the legacy per-plan engine against the fused
	// shared-state-space engine on the benchgen.Chained workload.
	Chained *chainedDoc `json:"chained,omitempty"`
	// LintSemantic measures the semantic analyzer suite (SUSC011–015,
	// witness extraction included) over the surface rendering of a
	// Chained workload.
	LintSemantic *lintDoc `json:"lint_semantic,omitempty"`
	Results      []result `json:"results"`
}

// lintDoc summarizes the semantic-lint series: the dominant cost is
// SUSC013's plan-space emptiness check, which explores the full
// fanout^depth plan family through the fused engine and memo cache.
type lintDoc struct {
	Depth       int     `json:"depth"`
	Fanout      int     `json:"fanout"`
	Plans       int     `json:"plans"`
	SourceBytes int     `json:"source_bytes"`
	HitRate     float64 `json:"hit_rate"`
}

// chainedDoc is the engine comparison on one Chained workload: the
// headline claim of the shared-graph engine (BENCH_pr2.json archives the
// legacy-vs-fused pair; BENCH_pr6.json adds the compiled engine).
type chainedDoc struct {
	Depth   int     `json:"depth"`
	Fanout  int     `json:"fanout"`
	Plans   int     `json:"plans"`
	Speedup float64 `json:"speedup"` // legacy ns_per_op / current-engine ns_per_op
	// SpeedupVsFused (compare mode only) is the PR 6 headline: the
	// BENCH_pr2-era fused engine's ns_per_op over the compiled engine's,
	// measured in the same process on the same machine.
	SpeedupVsFused float64 `json:"speedup_vs_fused,omitempty"`
	// Fused-engine work counters from the last fused iteration.
	StatesExpanded uint64 `json:"states_expanded"`
	EdgesBuilt     uint64 `json:"edges_built"`
	ReplayStates   uint64 `json:"replay_states"`
	ReplayMemoHits uint64 `json:"replay_memo_hits"`
}

func main() {
	hotels := flag.Int("hotels", 32, "size of the benchgen.Hotels workload")
	depth := flag.Int("chained-depth", 12, "depth of the benchgen.Chained workload (0 skips it)")
	fanout := flag.Int("chained-fanout", 2, "fanout of the benchgen.Chained workload")
	lintDepth := flag.Int("lint-semantic", 8, "depth of the Chained workload for the semantic-lint series (0 skips it; keep fanout^depth within the analyzers' plan budget)")
	out := flag.String("o", "", "write the JSON document here instead of stdout")
	chainedSrc := flag.Bool("chained-src", false, "print the surface-syntax source of the Chained workload and exit (no benchmarks); for budget/timeout smoke tests")
	compare := flag.Bool("chained-compare", false, "emit legacy/fused/compiled series side-by-side for the Chained workload (fused = the frozen BENCH_pr2-era reference engine)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile (taken after the benchmarks) to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdump:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "benchdump:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	defer func() {
		if *memprofile == "" {
			return
		}
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdump:", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "benchdump:", err)
			os.Exit(1)
		}
	}()

	if *chainedSrc {
		src := benchgen.ChainedSource(*depth, *fanout)
		if *out != "" {
			if err := os.WriteFile(*out, []byte(src), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			return
		}
		fmt.Print(src)
		return
	}

	w := benchgen.Hotels(*hotels)
	run := func(workers int, cache *memo.Cache) testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				as, err := plans.AssessAll(w.Repo, w.Table, w.Loc, w.Client,
					plans.Options{PruneNonCompliant: true, Workers: workers, Cache: cache})
				if err != nil {
					b.Fatal(err)
				}
				if len(as) == 0 {
					b.Fatal("no plans")
				}
			}
		})
	}

	doc := document{GoVersion: runtime.Version(), GoArch: runtime.GOARCH, Hotels: *hotels}
	for _, workers := range []int{1, 4} {
		r := run(workers, nil)
		doc.Results = append(doc.Results, toResult(
			fmt.Sprintf("PlanSynthesisParallel/workers=%d", workers), r, 0))
	}
	cache := memo.New()
	r := run(4, cache)
	doc.Results = append(doc.Results, toResult(
		fmt.Sprintf("PlanSynthesisCached/workers=%d", 4), r, cache.Stats().HitRate()))

	if *depth > 0 {
		doc.Chained = runChained(*depth, *fanout, *compare, &doc)
	}
	if *lintDepth > 0 {
		doc.LintSemantic = runLintSemantic(*lintDepth, *fanout, &doc)
	}

	enc := json.NewEncoder(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdump:", err)
			os.Exit(1)
		}
		defer f.Close()
		enc = json.NewEncoder(f)
	}
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchdump:", err)
		os.Exit(1)
	}
}

// runChained benchmarks the engines on one Chained workload, appends the
// series to the document, and returns the comparison summary. The default
// mode emits the historical legacy/fused pair (fused = the current,
// compiled engine). Compare mode emits three series — legacy, fused (the
// frozen EngineReference, i.e. the engine BENCH_pr2 called "fused") and
// compiled — so a speedup claim against the PR 2 numbers is measured in
// one process on one machine instead of across archived JSON files.
func runChained(depth, fanout int, compare bool, doc *document) *chainedDoc {
	w := benchgen.Chained(depth, fanout)
	var stats plans.FusedStats
	run := func(engine plans.Engine, st *plans.FusedStats) testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			// Level the GC before timing: the engines run back-to-back in
			// one process, and whichever series follows a big one would
			// otherwise inherit an inflated pacing goal (fewer collections
			// → flattering numbers for the later engine). A plain GC only —
			// debug.FreeOSMemory would hand the pages back and make every
			// series refault its working set, a cost that lands on whichever
			// engine allocates its arenas up front rather than on whichever
			// is slower.
			runtime.GC()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if st != nil {
					*st = plans.FusedStats{}
				}
				as, err := plans.AssessAll(w.Repo, w.Table, w.Loc, w.Client,
					plans.Options{PruneNonCompliant: true, Engine: engine, Stats: st})
				if err != nil {
					b.Fatal(err)
				}
				if len(as) != w.PlanCount {
					b.Fatalf("plans = %d, want %d", len(as), w.PlanCount)
				}
			}
		})
	}
	nsPerOp := func(r testing.BenchmarkResult) float64 {
		return float64(r.T.Nanoseconds()) / float64(r.N)
	}
	// merge pools two benchmark results: summing durations, iterations and
	// allocation counters keeps every per-op figure a true mean over the
	// combined iterations.
	merge := func(a, b testing.BenchmarkResult) testing.BenchmarkResult {
		return testing.BenchmarkResult{
			N: a.N + b.N, T: a.T + b.T,
			MemAllocs: a.MemAllocs + b.MemAllocs,
			MemBytes:  a.MemBytes + b.MemBytes,
		}
	}
	legacy := run(plans.EngineLegacy, nil)
	var compiled, reference testing.BenchmarkResult
	if compare {
		// Interleave the two engines under comparison and average over a
		// few rounds: on a shared box the available throughput drifts on
		// the scale of one series, so back-to-back single runs confound
		// engine speed with machine drift. Alternating the engines puts
		// both under (approximately) the same drift, and flipping which
		// engine leads each round cancels the residual position effect
		// (whichever series runs second starts on the heap state its
		// predecessor left behind).
		const rounds = 4
		for r := 0; r < rounds; r++ {
			if r%2 == 0 {
				reference = merge(reference, run(plans.EngineReference, nil))
				compiled = merge(compiled, run(plans.EngineFused, &stats))
			} else {
				compiled = merge(compiled, run(plans.EngineFused, &stats))
				reference = merge(reference, run(plans.EngineReference, nil))
			}
		}
	} else {
		compiled = run(plans.EngineFused, &stats)
	}
	base := fmt.Sprintf("PlanSynthesisChained/depth=%d/fanout=%d", depth, fanout)
	cd := &chainedDoc{
		Depth:          depth,
		Fanout:         fanout,
		Plans:          w.PlanCount,
		Speedup:        nsPerOp(legacy) / nsPerOp(compiled),
		StatesExpanded: stats.StatesExpanded,
		EdgesBuilt:     stats.EdgesBuilt,
		ReplayStates:   stats.ReplayStates,
		ReplayMemoHits: stats.ReplayMemoHits,
	}
	if compare {
		cd.SpeedupVsFused = nsPerOp(reference) / nsPerOp(compiled)
		doc.Results = append(doc.Results,
			toResult(base+"/legacy", legacy, 0),
			toResult(base+"/fused", reference, 0),
			toResult(base+"/compiled", compiled, 0))
		return cd
	}
	doc.Results = append(doc.Results,
		toResult(base+"/legacy", legacy, 0),
		toResult(base+"/fused", compiled, 0))
	return cd
}

// runLintSemantic benchmarks the full lint suite — default analyzers plus
// the semantic SUSC011–015 pass with witness extraction — over the surface
// rendering of a Chained workload, appends two series (syntactic-only and
// full) to the document, and returns the summary. The workload is lint-
// clean, so the run measures pure analysis: SUSC013 alone walks the whole
// fanout^depth plan space through the fused engine.
func runLintSemantic(depth, fanout int, doc *document) *lintDoc {
	src := benchgen.ChainedSource(depth, fanout)
	w := benchgen.Chained(depth, fanout)
	cache := memo.New()
	run := func(analyzers []*lint.Analyzer) testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				diags := lint.Source(src, lint.Options{Analyzers: analyzers, Cache: cache})
				if len(diags) != 0 {
					b.Fatalf("chained workload is not lint-clean: %v", diags)
				}
			}
		})
	}
	base := fmt.Sprintf("LintChained/depth=%d/fanout=%d", depth, fanout)
	doc.Results = append(doc.Results,
		toResult(base+"/syntactic", run(lint.Analyzers()), 0),
		toResult(base+"/semantic", run(lint.AllAnalyzers()), cache.Stats().HitRate()))
	return &lintDoc{
		Depth:       depth,
		Fanout:      fanout,
		Plans:       w.PlanCount,
		SourceBytes: len(src),
		HitRate:     cache.Stats().HitRate(),
	}
}

func toResult(name string, r testing.BenchmarkResult, hitRate float64) result {
	return result{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		HitRate:     hitRate,
	}
}
