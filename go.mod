module susc

go 1.22
