// End-to-end properties tying the whole pipeline together: parsing,
// synthesis, static verification and execution must tell one coherent
// story — the paper's headline theorem in executable form: *a statically
// valid plan never goes wrong at run time, under any scheduler*.
package susc_test

import (
	"math/rand"
	"os"
	"testing"

	"susc/internal/benchgen"
	"susc/internal/compliance"
	"susc/internal/hexpr"
	"susc/internal/history"
	"susc/internal/network"
	"susc/internal/parser"
	"susc/internal/plans"
	"susc/internal/policy"
	"susc/internal/verify"
)

func loadHotelFile(t *testing.T) *parser.File {
	t.Helper()
	src, err := os.ReadFile("testdata/hotel.susc")
	if err != nil {
		t.Fatal(err)
	}
	f, err := parser.ParseFile(string(src))
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestE2EValidPlansNeverGoWrong: for every client of the hotel file, every
// plan synthesis classifies as valid runs to completion with the monitor
// OFF under many schedulers, producing a balanced, valid history.
func TestE2EValidPlansNeverGoWrong(t *testing.T) {
	f := loadHotelFile(t)
	for _, c := range f.Clients {
		assessed, err := plans.AssessAll(f.Repo, f.Table, c.Loc, c.Expr, plans.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range assessed {
			if a.Report.Verdict != verify.Valid {
				continue
			}
			for seed := int64(0); seed < 25; seed++ {
				cfg := network.NewConfig(f.Repo, f.Table,
					network.Client{Loc: c.Loc, Expr: c.Expr, Plan: a.Plan})
				res := cfg.Run(network.RunOptions{Rand: rand.New(rand.NewSource(seed))})
				if res.Status != network.Completed {
					t.Fatalf("client %s, valid plan %s, seed %d: %s",
						c.Name, a.Plan, seed, res)
				}
				h := cfg.Comps[0].Hist
				if !h.Balanced() || !history.Valid(h, f.Table) {
					t.Fatalf("client %s, plan %s: run produced bad history %s",
						c.Name, a.Plan, h)
				}
			}
		}
	}
}

// TestE2ESecurityViolatingPlansAbortWhenMonitored: plans classified as
// security violations trip the run-time monitor, and unmonitored runs of
// the same plans produce invalid histories — the monitor and the static
// verdict agree.
func TestE2ESecurityViolatingPlansAbortWhenMonitored(t *testing.T) {
	f := loadHotelFile(t)
	checked := 0
	for _, c := range f.Clients {
		assessed, err := plans.AssessAll(f.Repo, f.Table, c.Loc, c.Expr, plans.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range assessed {
			if a.Report.Verdict != verify.SecurityViolation {
				continue
			}
			checked++
			cfg := network.NewConfig(f.Repo, f.Table,
				network.Client{Loc: c.Loc, Expr: c.Expr, Plan: a.Plan})
			res := cfg.Run(network.RunOptions{Monitored: true})
			if res.Status != network.SecurityAbort {
				t.Errorf("client %s, plan %s: monitored run gave %s, want security-abort",
					c.Name, a.Plan, res)
			}
			free := network.NewConfig(f.Repo, f.Table,
				network.Client{Loc: c.Loc, Expr: c.Expr, Plan: a.Plan})
			fres := free.Run(network.RunOptions{})
			if fres.Status == network.Completed &&
				history.Valid(free.Comps[0].Hist, f.Table) {
				t.Errorf("client %s, plan %s: free run produced a valid history despite the verdict",
					c.Name, a.Plan)
			}
		}
	}
	if checked == 0 {
		t.Fatal("no security-violating plans in the scenario")
	}
}

// TestE2EScaledWorlds: on generated repositories of growing size, every
// synthesized valid plan re-verifies and runs cleanly.
func TestE2EScaledWorlds(t *testing.T) {
	for _, n := range []int{4, 12, 20} {
		w := benchgen.Hotels(n)
		valid, err := plans.Synthesize(w.Repo, w.Table, w.Loc, w.Client,
			plans.Options{PruneNonCompliant: true})
		if err != nil {
			t.Fatal(err)
		}
		if len(valid) == 0 {
			t.Fatalf("hotels=%d: no valid plan", n)
		}
		for _, p := range valid {
			ok, err := verify.ValidPlan(w.Repo, w.Table, w.Loc, w.Client, p)
			if err != nil || !ok {
				t.Fatalf("hotels=%d: synthesized plan %s fails re-validation: %v %v", n, p, ok, err)
			}
		}
		// run the first valid plan under several schedulers
		for seed := int64(0); seed < 10; seed++ {
			cfg := network.NewConfig(w.Repo, w.Table,
				network.Client{Loc: w.Loc, Expr: w.Client, Plan: valid[0]})
			res := cfg.Run(network.RunOptions{Rand: rand.New(rand.NewSource(seed))})
			if res.Status != network.Completed {
				t.Fatalf("hotels=%d seed %d: %s", n, seed, res)
			}
		}
	}
}

// TestE2ECompliantPairsNeverDeadlock: for random contract pairs, when the
// product automaton says compliant, no run of the corresponding session
// ever deadlocks (it completes or, for recursive contracts, runs out of
// fuel mid-progress); when it says non-compliant, CheckPlan flags the plan.
func TestE2ECompliantPairsNeverDeadlock(t *testing.T) {
	rnd := rand.New(rand.NewSource(77))
	table := policy.NewTable()
	compliantSeen, nonCompliantSeen := 0, 0
	for i := 0; i < 200; i++ {
		cbody := hexpr.GenerateContract(rnd, 4)
		server := hexpr.GenerateContract(rnd, 4)
		ok, err := compliance.Compliant(cbody, server)
		if err != nil {
			t.Fatal(err)
		}
		client := hexpr.Open("r1", hexpr.NoPolicy, cbody)
		repo := network.Repository{"srv": server}
		plan := network.Plan{"r1": "srv"}
		if ok {
			compliantSeen++
			for seed := int64(0); seed < 5; seed++ {
				cfg := network.NewConfig(repo, table, network.Client{Loc: "cl", Expr: client, Plan: plan})
				res := cfg.Run(network.RunOptions{Rand: rand.New(rand.NewSource(seed)), MaxSteps: 500})
				if res.Status == network.Deadlock {
					t.Fatalf("compliant pair deadlocked:\n  client %s\n  server %s\n  %s",
						hexpr.Pretty(cbody), hexpr.Pretty(server), res)
				}
			}
		} else {
			nonCompliantSeen++
			r, err := verify.CheckPlan(repo, table, "cl", client, plan)
			if err != nil {
				t.Fatal(err)
			}
			if r.Verdict != verify.NotCompliant {
				t.Fatalf("non-compliant pair not flagged: %s\n  client %s\n  server %s",
					r, hexpr.Pretty(cbody), hexpr.Pretty(server))
			}
		}
	}
	if compliantSeen == 0 || nonCompliantSeen == 0 {
		t.Fatalf("degenerate sample: %d compliant, %d non-compliant", compliantSeen, nonCompliantSeen)
	}
}

// TestE2EFormatPreservesVerdicts: reformatting the scenario preserves
// every plan verdict.
func TestE2EFormatPreservesVerdicts(t *testing.T) {
	f1 := loadHotelFile(t)
	f2, err := parser.ParseFile(parser.Format(f1))
	if err != nil {
		t.Fatal(err)
	}
	for i, c1 := range f1.Clients {
		c2 := f2.Clients[i]
		a1, err := plans.AssessAll(f1.Repo, f1.Table, c1.Loc, c1.Expr, plans.Options{})
		if err != nil {
			t.Fatal(err)
		}
		a2, err := plans.AssessAll(f2.Repo, f2.Table, c2.Loc, c2.Expr, plans.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(a1) != len(a2) {
			t.Fatalf("client %s: %d vs %d plans", c1.Name, len(a1), len(a2))
		}
		for j := range a1 {
			if a1[j].Plan.Key() != a2[j].Plan.Key() ||
				a1[j].Report.Verdict != a2[j].Report.Verdict {
				t.Errorf("client %s plan %s: verdict changed across formatting: %s vs %s",
					c1.Name, a1[j].Plan, a1[j].Report.Verdict, a2[j].Report.Verdict)
			}
		}
	}
}
