// Package susc is a Go reproduction of "Secure and Unfailing Services"
// (Basile, Degano, Ferrari): history expressions with communication,
// usage-automata security policies, history-dependent validity, behavioural
// contracts and compliance via product automata, networks of services with
// plans, and static extraction of valid plans — so that verified
// orchestrations run with no run-time monitor.
//
// The implementation lives under internal/ (see DESIGN.md for the map);
// cmd/susc is the command-line front end and examples/ holds runnable
// walkthroughs, starting with examples/quickstart.
package susc
