// Marketplace is a larger scenario written in the surface language: a
// buyer contacts a marketplace, which pays through a gateway and ships
// through a courier, with a tracking loop (recursion) between marketplace
// and courier. Two policies constrain the orchestration — a fraud cap on
// charges and an export restriction on routing — and one courier has a
// non-compliant contract (it may report the parcel Lost, which the
// marketplace cannot handle). Plan synthesis finds the single valid
// orchestration; the example then runs it with the monitor off.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"susc/internal/network"
	"susc/internal/parser"
	"susc/internal/plans"
	"susc/internal/verify"
)

const source = `
policy nofraud(limit int) {
  states q0 qv;
  start q0;
  final qv;
  edge q0 -> qv on charge(x) when x > limit;
}

policy noexport(banned set) {
  states q0 qv;
  start q0;
  final qv;
  edge q0 -> qv on route(r) when r in banned;
}

instance fraud100 = nofraud(limit = 100);
instance euOnly   = noexport(banned = {offshore});

// payment gateways
service pgfair   = Charge? . charge(80)  . (OK! (+) Fail!);
service pggreedy = Charge? . charge(120) . (OK! (+) Fail!);

// couriers; the slow one may lose parcels, which the marketplace cannot
// handle, and the offshore one routes through a banned region
service fastcourier     = Pickup? . route(eu) . mu h . (Track! . h (+) Deliver!);
service slowcourier     = Pickup? . route(eu) . mu h . (Track! . h (+) Deliver! (+) Lost!);
service offshorecourier = Pickup? . route(offshore) . mu h . (Track! . h (+) Deliver!);

// the marketplace: take the order, charge, ship, confirm
service market = Buy? .
    open rp { Charge! . (OK? + Fail?) } .
    open rc { Pickup! . mu k . (Track? . k + Deliver?) } .
    (Conf! (+) Abort!);

client buyer at buyer plan { r0 -> market, rp -> pgfair, rc -> fastcourier } =
    open r0 with fraud100 { enforce euOnly { Buy! . (Conf? + Abort?) } };
`

func main() {
	f, err := parser.ParseFile(source)
	if err != nil {
		log.Fatal(err)
	}
	buyer, err := f.Client("buyer")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== classifying every orchestration of the buyer ==")
	as, err := plans.AssessAll(f.Repo, f.Table, buyer.Loc, buyer.Expr,
		plans.Options{PruneNonCompliant: true})
	if err != nil {
		log.Fatal(err)
	}
	validCount := 0
	for _, a := range as {
		fmt.Printf("  %-48s %s\n", a.Plan, a.Report)
		if a.Report.Verdict == verify.Valid {
			validCount++
		}
	}
	fmt.Printf("  => %d assessed under pruning, %d valid\n", len(as), validCount)

	fmt.Println("== full (unpruned) classification, for the record ==")
	all, err := plans.AssessAll(f.Repo, f.Table, buyer.Loc, buyer.Expr, plans.Options{})
	if err != nil {
		log.Fatal(err)
	}
	byVerdict := map[verify.Verdict]int{}
	for _, a := range all {
		byVerdict[a.Report.Verdict]++
	}
	fmt.Printf("  %d total plans: %d valid, %d security violations, %d non-compliant, %d deadlocked/unbounded\n",
		len(all), byVerdict[verify.Valid], byVerdict[verify.SecurityViolation],
		byVerdict[verify.NotCompliant],
		byVerdict[verify.CommunicationDeadlock]+byVerdict[verify.UnboundedNesting])

	fmt.Println("== validating and running the declared plan ==")
	report, err := verify.CheckPlan(f.Repo, f.Table, buyer.Loc, buyer.Expr, buyer.Plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  static verdict: %s\n", report)
	if report.Verdict != verify.Valid {
		log.Fatal("declared plan is invalid")
	}
	cfg := network.NewConfig(f.Repo, f.Table,
		network.Client{Loc: buyer.Loc, Expr: buyer.Expr, Plan: buyer.Plan})
	res := cfg.Run(network.RunOptions{Rand: rand.New(rand.NewSource(7))})
	fmt.Printf("  run: %s in %d steps (monitor off — the plan is verified)\n", res.Status, res.Steps)
	fmt.Printf("  history: %s\n", cfg.Comps[0].Hist)
}
