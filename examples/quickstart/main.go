// Quickstart: build a client and two candidate services programmatically,
// check compliance and security, synthesize the valid plans, and run the
// network — the whole pipeline of "Secure and Unfailing Services" in one
// page.
package main

import (
	"fmt"
	"log"

	"susc/internal/compliance"
	"susc/internal/hexpr"
	"susc/internal/network"
	"susc/internal/plans"
	"susc/internal/policy"
	"susc/internal/verify"
)

func main() {
	// A policy from the standard templates: shipping requires a prior
	// payment (the automaton recognises the violation ship-before-paid).
	payFirst := policy.MustInstance(policy.RequireBefore("payFirst", "paid", 0, "ship", 0))
	table := policy.NewTable(payFirst)

	// The client: open a session enforcing payFirst, send an order, then
	// either receive the parcel or a rejection.
	client := hexpr.Open("r1", payFirst.ID(),
		hexpr.SendThen("Order", hexpr.Ext(
			hexpr.B(hexpr.In("Parcel"), hexpr.Eps()),
			hexpr.B(hexpr.In("Reject"), hexpr.Eps()),
		)))

	// A well-behaved shop: records the payment, then ships or rejects.
	goodShop := hexpr.RecvThen("Order", hexpr.Cat(
		hexpr.Act(hexpr.E("paid")),
		hexpr.Act(hexpr.E("ship")),
		hexpr.IntCh(
			hexpr.B(hexpr.Out("Parcel"), hexpr.Eps()),
			hexpr.B(hexpr.Out("Reject"), hexpr.Eps()),
		)))

	// A rogue shop: ships before the payment is recorded...
	rogueShop := hexpr.RecvThen("Order", hexpr.Cat(
		hexpr.Act(hexpr.E("ship")),
		hexpr.Act(hexpr.E("paid")),
		hexpr.SendThen("Parcel", hexpr.Eps())))

	// ...and a chatty shop that may answer on a channel the client cannot
	// handle.
	chattyShop := hexpr.RecvThen("Order", hexpr.Cat(
		hexpr.Act(hexpr.E("paid")),
		hexpr.IntCh(
			hexpr.B(hexpr.Out("Parcel"), hexpr.Eps()),
			hexpr.B(hexpr.Out("Backorder"), hexpr.Eps()),
		)))

	repo := network.Repository{
		"good":   goodShop,
		"rogue":  rogueShop,
		"chatty": chattyShop,
	}

	fmt.Println("== compliance of the client's request against each shop ==")
	body := client.(hexpr.Session).Body
	for _, loc := range repo.Locations() {
		ok, err := compliance.Compliant(body, repo[loc])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s compliant: %v\n", loc, ok)
	}

	fmt.Println("== plan classification ==")
	as, err := plans.AssessAll(repo, table, "cl", client, plans.Options{})
	if err != nil {
		log.Fatal(err)
	}
	for _, a := range as {
		fmt.Printf("  %-16s %s\n", a.Plan, a.Report)
	}

	fmt.Println("== running the only valid plan, monitor off ==")
	valid, err := plans.Synthesize(repo, table, "cl", client, plans.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if len(valid) != 1 {
		log.Fatalf("expected exactly one valid plan, got %v", valid)
	}
	if ok, _ := verify.ValidPlan(repo, table, "cl", client, valid[0]); !ok {
		log.Fatal("synthesized plan failed re-validation")
	}
	cfg := network.NewConfig(repo, table, network.Client{Loc: "cl", Expr: client, Plan: valid[0]})
	res := cfg.Run(network.RunOptions{})
	fmt.Printf("  status : %s in %d steps\n", res.Status, res.Steps)
	fmt.Printf("  history: %s\n", cfg.Comps[0].Hist)
}
