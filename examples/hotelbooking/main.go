// Hotelbooking reproduces, end to end, the running example of §2 of
// "Secure and Unfailing Services": the policy of Figure 1, the clients,
// broker and hotels of Figure 2, the computation fragment of Figure 3, and
// the plan-validity claims of the section. Its output is the ground truth
// recorded in EXPERIMENTS.md.
package main

import (
	"fmt"
	"log"

	"susc/internal/compliance"
	"susc/internal/contract"
	"susc/internal/hexpr"
	"susc/internal/network"
	"susc/internal/paperex"
	"susc/internal/plans"
	"susc/internal/valid"
)

func main() {
	fig1()
	fig2Compliance()
	securityMatrix()
	planClassification()
	fig3()
}

// fig1 instantiates φ(bl,p,t) twice and classifies each hotel's trace.
func fig1() {
	fmt.Println("== Figure 1: the policy phi(bl, p, t) ==")
	hotels := []struct {
		name   string
		id     string
		price  int
		rating int
	}{
		{"S1", "s1", 45, 80},
		{"S2", "s2", 70, 100},
		{"S3", "s3", 90, 100},
		{"S4", "s4", 50, 90},
	}
	phis := []struct {
		name string
		in   interface {
			Recognizes([]hexpr.Event) bool
		}
	}{
		{"phi1 = phi({s1},45,100)", paperex.Phi1()},
		{"phi2 = phi({s1,s3},40,70)", paperex.Phi2()},
	}
	for _, p := range phis {
		fmt.Printf("  %s:\n", p.name)
		for _, h := range hotels {
			trace := []hexpr.Event{
				hexpr.E(paperex.EvSgn, hexpr.Sym(h.id)),
				hexpr.E(paperex.EvPrice, hexpr.Int(h.price)),
				hexpr.E(paperex.EvRating, hexpr.Int(h.rating)),
			}
			verdict := "respects"
			if p.in.Recognizes(trace) {
				verdict = "VIOLATES"
			}
			fmt.Printf("    %s sgn(%s) price(%d) rating(%d): %s\n",
				h.name, h.id, h.price, h.rating, verdict)
		}
	}
}

// fig2Compliance prints the projections and the compliance matrix.
func fig2Compliance() {
	fmt.Println("== Figure 2: contracts and compliance ==")
	br := paperex.Broker()
	fmt.Printf("  Br! = %s\n", hexpr.Pretty(contract.Project(br)))
	body, _, err := contract.RequestBody(br, "r3")
	if err != nil {
		log.Fatal(err)
	}
	hotels := []struct {
		name string
		e    hexpr.Expr
	}{
		{"S1", paperex.S1()}, {"S2", paperex.S2()}, {"S3", paperex.S3()}, {"S4", paperex.S4()},
	}
	for _, h := range hotels {
		ok, err := compliance.Compliant(body, h.e)
		if err != nil {
			log.Fatal(err)
		}
		mark := "compliant with Br"
		if !ok {
			w := "?"
			if p, err := compliance.NewProduct(body, h.e); err == nil {
				if wit := p.FindWitness(); wit != nil {
					w = wit.String()
				}
			}
			mark = "NOT compliant with Br (" + w + ")"
		}
		fmt.Printf("  %s (%s): %s\n", h.name, hexpr.Pretty(contract.Project(h.e)), mark)
	}
	for _, c := range []struct {
		name string
		e    hexpr.Expr
		req  hexpr.RequestID
	}{{"C1", paperex.C1(), "r1"}, {"C2", paperex.C2(), "r2"}} {
		b, _, err := contract.RequestBody(c.e, c.req)
		if err != nil {
			log.Fatal(err)
		}
		ok, err := compliance.Compliant(b, br)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s compliant with Br: %v\n", c.name, ok)
	}
}

// securityMatrix checks each hotel against each client's policy.
func securityMatrix() {
	fmt.Println("== Security: hotels under the clients' policies ==")
	table := paperex.Policies()
	for _, p := range []struct {
		name string
		id   hexpr.PolicyID
	}{{"phi1", paperex.Phi1().ID()}, {"phi2", paperex.Phi2().ID()}} {
		for name, e := range map[string]hexpr.Expr{
			"S1": paperex.S1(), "S2": paperex.S2(), "S3": paperex.S3(), "S4": paperex.S4(),
		} {
			ok, err := valid.Valid(hexpr.Frame(p.id, e), table)
			if err != nil {
				log.Fatal(err)
			}
			verdict := "ok"
			if !ok {
				verdict = "VIOLATION"
			}
			fmt.Printf("  %s under %s: %s\n", name, p.name, verdict)
		}
	}
}

// planClassification enumerates and classifies every plan of both clients.
func planClassification() {
	fmt.Println("== Plans (Sect. 2): validity classification ==")
	repo := paperex.Repository()
	table := paperex.Policies()
	for _, c := range []struct {
		name string
		loc  hexpr.Location
		e    hexpr.Expr
	}{
		{"C1", paperex.LocC1, paperex.C1()},
		{"C2", paperex.LocC2, paperex.C2()},
	} {
		as, err := plans.AssessAll(repo, table, c.loc, c.e, plans.Options{PruneNonCompliant: false})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s:\n", c.name)
		for _, a := range as {
			fmt.Printf("    %-20s %s\n", a.Plan, a.Report)
		}
	}
}

// fig3 replays the computation fragment of Figure 3 and prints it.
func fig3() {
	fmt.Println("== Figure 3: the computation fragment ==")
	phi1 := paperex.Phi1().ID()
	phi2 := paperex.Phi2().ID()
	cfg := network.NewConfig(paperex.Repository(), paperex.Policies(),
		network.Client{Loc: paperex.LocC1, Expr: paperex.C1(),
			Plan: network.Plan{"r1": paperex.LocBr, "r3": paperex.LocS3}},
		network.Client{Loc: paperex.LocC2, Expr: paperex.C2(),
			Plan: network.Plan{"r2": paperex.LocBr, "r3": paperex.LocS4}},
	)
	steps := []network.TraceEntry{
		{Comp: 0, Label: hexpr.OpenLabel("r1", phi1)},
		{Comp: 0, Label: hexpr.Tau},
		{Comp: 0, Label: hexpr.OpenLabel("r3", hexpr.NoPolicy)},
		{Comp: 1, Label: hexpr.OpenLabel("r2", phi2)},
		{Comp: 0, Label: hexpr.EventLabel(hexpr.E(paperex.EvSgn, hexpr.Sym("s3")))},
		{Comp: 0, Label: hexpr.EventLabel(hexpr.E(paperex.EvPrice, hexpr.Int(90)))},
		{Comp: 0, Label: hexpr.EventLabel(hexpr.E(paperex.EvRating, hexpr.Int(100)))},
		{Comp: 0, Label: hexpr.Tau},
		{Comp: 0, Label: hexpr.Tau},
		{Comp: 0, Label: hexpr.CloseLabel("r3", hexpr.NoPolicy)},
		{Comp: 0, Label: hexpr.Tau},
		{Comp: 0, Label: hexpr.CloseLabel("r1", phi1)},
		{Comp: 1, Label: hexpr.Tau},
	}
	if at := cfg.Replay(steps, true); at != -1 {
		log.Fatalf("figure 3 trace failed at step %d", at)
	}
	descr := []string{
		"C1 opens session 1 with the broker (policy phi1 activates)",
		"Req: the broker accepts C1's request",
		"the broker opens nested session 3 with S3",
		"C2 opens session 2 concurrently (policy phi2 activates)",
		"S3 signs the contract",
		"S3 publishes its price",
		"S3 publishes its rating",
		"IdC: the broker forwards the client data",
		"UnA: no rooms available",
		"session 3 closes",
		"NoAv: the broker forwards the answer to C1",
		"session 1 closes (phi1 deactivates)",
		"Req: C2's broker instance accepts its request",
	}
	for i, s := range steps {
		fmt.Printf("  %2d. [comp %d] %-28s %s\n", i+1, s.Comp, s.Label, descr[i])
	}
	fmt.Printf("  C1 history: %s\n", cfg.Comps[0].Hist)
	fmt.Printf("  C1 terminated: %v; C2 still running: %v\n",
		network.Done(cfg.Comps[0].Tree), !network.Done(cfg.Comps[1].Tree))
}
