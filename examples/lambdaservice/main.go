// Lambdaservice demonstrates the language front end: service code is
// written in the call-by-contract λ-calculus, its history expression is
// extracted by the type and effect system, and the extracted behaviour is
// fed to the paper's analyses — compliance against a published service and
// plan validation — without ever writing a history expression by hand.
package main

import (
	"fmt"
	"log"

	"susc/internal/hexpr"
	"susc/internal/lambda"
	"susc/internal/network"
	"susc/internal/paperex"
	"susc/internal/parser"
	"susc/internal/verify"
)

func main() {
	// The client program: open a session with the booking broker under
	// φ₁, send the request, then settle the bill on confirmation or accept
	// the no-availability answer. This is C1 of the paper, as a program.
	prog := lambda.Request{
		Req:    "r1",
		Policy: paperex.Phi1().ID(),
		Body: lambda.Select{Branches: []lambda.CommBranch{
			{Channel: "Req", Body: lambda.Branch{Branches: []lambda.CommBranch{
				{Channel: "CoBo", Body: lambda.Select{Branches: []lambda.CommBranch{
					{Channel: "Pay", Body: lambda.Unit{}},
				}}},
				{Channel: "NoAv", Body: lambda.Unit{}},
			}}},
		}},
	}

	fmt.Println("== the client program ==")
	fmt.Println(" ", prog)

	ty, eff, err := lambda.InferClosed(prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== type and effect ==")
	fmt.Printf("  type   : %s\n", ty)
	fmt.Printf("  effect : %s\n", hexpr.Pretty(eff))
	if !hexpr.Equal(eff, paperex.C1()) {
		log.Fatal("the extracted effect should coincide with the paper's C1")
	}
	fmt.Println("  (the effect coincides with C1 of the paper)")

	fmt.Println("== validating plans for the extracted effect ==")
	repo := paperex.Repository()
	table := paperex.Policies()
	for _, loc := range []hexpr.Location{paperex.LocS1, paperex.LocS2, paperex.LocS3, paperex.LocS4} {
		plan := network.Plan{"r1": paperex.LocBr, "r3": loc}
		r, err := verify.CheckPlan(repo, table, "client", eff, plan)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  r3 -> %-3s : %s\n", loc, r)
	}

	// A second program: a pure (communication-free) audit routine whose
	// effect can be checked AND which can simply be run.
	audit := lambda.Enforce{
		Policy: paperex.Phi1().ID(),
		Body: lambda.Seq{
			First: lambda.Fire{Event: hexpr.E(paperex.EvSgn, hexpr.Sym("s3"))},
			Then: lambda.Seq{
				First: lambda.Fire{Event: hexpr.E(paperex.EvPrice, hexpr.Int(90))},
				Then:  lambda.Fire{Event: hexpr.E(paperex.EvRating, hexpr.Int(100))},
			},
		},
	}
	fmt.Println("== a communication-free audit routine ==")
	_, aeff, err := lambda.InferClosed(audit)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  effect : %s\n", hexpr.Pretty(aeff))
	v, hist, err := lambda.Eval(audit, 1000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  run    : value %s, history %s\n", v, hist)

	// Finally, run ACTUAL λ-programs as the network: the broker program
	// opens its nested session with the hotel program, all under the
	// verified plan — monitor off.
	fmt.Println("== running the λ-programs under the verified plan ==")
	broker := parser.MustParseLambda(`
branch { Req =>
  open r3 { select { IdC => branch { Bok => () | UnA => () } } };
  select { CoBo => branch { Pay => () } | NoAv => () }
}`)
	hotelS3 := parser.MustParseLambda(`
fire sgn(s3); fire price(90); fire rating(100);
branch { IdC => select { Bok => () | UnA => () } }`)
	lamRepo := lambda.ServiceRepo{"br": broker, "s3": hotelS3}
	res, err := lambda.RunNetwork(prog, "c1", lamRepo,
		network.Plan{"r1": "br", "r3": "s3"}, lambda.NetOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  status : %s\n", res.Status)
	fmt.Printf("  history: %s\n", res.Hist)
	fmt.Printf("  synced : %v\n", res.Synchronised)
}
