// Ratelimited demonstrates the two §5 extensions implemented by the
// toolkit on top of the paper: *bounded service availability* (services no
// longer replicate unboundedly; sessions consume replicas) and
// *quantitative policies* (counting usage automata bounding how many times
// an event may fire). A crawler client fans out nested fetch sessions and
// must respect both a download quota and the worker pool size.
package main

import (
	"fmt"
	"log"

	"susc/internal/hexpr"
	"susc/internal/network"
	"susc/internal/plans"
	"susc/internal/policy"
	"susc/internal/verify"
)

func main() {
	// Quantitative policy: at most 2 downloads per session.
	quota := policy.MustCounting("quota", "download", 1, 2).
		MustInstantiate(policy.Binding{})
	table := policy.NewTable(quota)

	// A fetch worker: receives a URL request, fires the download event,
	// returns the page.
	worker := hexpr.RecvThen("Fetch", hexpr.Cat(
		hexpr.Act(hexpr.E("download", hexpr.Int(1))),
		hexpr.SendThen("Page", hexpr.Eps()),
	))

	// A greedy worker downloads twice per request (mirror + original).
	greedy := hexpr.RecvThen("Fetch", hexpr.Cat(
		hexpr.Act(hexpr.E("download", hexpr.Int(1))),
		hexpr.Act(hexpr.E("download", hexpr.Int(2))),
		hexpr.SendThen("Page", hexpr.Eps()),
	))

	repo := network.Repository{"worker": worker, "greedy": greedy}

	// The crawler opens two nested fetch sessions under the quota.
	crawler := hexpr.Open("r1", quota.ID(),
		hexpr.SendThen("Fetch", hexpr.RecvThen("Page",
			hexpr.Open("r2", hexpr.NoPolicy,
				hexpr.SendThen("Fetch", hexpr.RecvThen("Page", hexpr.Eps()))))))

	fmt.Println("== plan classification under the download quota (<= 2) ==")
	as, err := plans.AssessAll(repo, table, "crawler", crawler, plans.Options{})
	if err != nil {
		log.Fatal(err)
	}
	for _, a := range as {
		fmt.Printf("  %-36s %s\n", a.Plan, a.Report)
	}

	plan := network.Plan{"r1": "worker", "r2": "worker"}
	fmt.Println("== bounded availability of the worker pool ==")
	for _, replicas := range []int{1, 2} {
		caps := map[hexpr.Location]int{"worker": replicas}
		r, err := verify.CheckPlanOpts(repo, table, "crawler", crawler, plan,
			verify.Options{Capacities: caps})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %d replica(s): static verdict %s\n", replicas, r)
		cfg := network.NewConfig(repo, table,
			network.Client{Loc: "crawler", Expr: crawler, Plan: plan}).
			WithAvailability(caps)
		res := cfg.Run(network.RunOptions{})
		fmt.Printf("               runtime: %s in %d steps\n", res.Status, res.Steps)
	}

	fmt.Println("== running the verified configuration ==")
	cfg := network.NewConfig(repo, table,
		network.Client{Loc: "crawler", Expr: crawler, Plan: plan}).
		WithAvailability(map[hexpr.Location]int{"worker": 2})
	res := cfg.Run(network.RunOptions{})
	fmt.Printf("  %s; history: %s\n", res.Status, cfg.Comps[0].Hist)
}
